"""SelectionPlan: construction-time validation, immutability, keying —
uniformly enforced through the plan itself, the legacy shims and the
fluent array methods."""

import dataclasses

import pytest

import repro
from repro.core.plan import SEQUENTIAL_METHODS, as_plan
from repro.errors import ConfigurationError
from repro.selection import ALGORITHMS, FastRandomizedParams


class TestValidation:
    def test_unknown_algorithm_names_options(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm") as ei:
            repro.SelectionPlan(algorithm="quantum")
        for name in ALGORITHMS:
            assert name in str(ei.value)

    def test_unknown_balancer_names_options(self):
        with pytest.raises(ConfigurationError, match="unknown balancer") as ei:
            repro.SelectionPlan(balancer="wat")
        for name in ["none", "omlb", "modified_omlb", "dimension_exchange",
                     "global_exchange"]:
            assert name in str(ei.value)

    def test_unknown_backend_names_options(self):
        from repro.machine import available_backends

        with pytest.raises(ConfigurationError, match="unknown backend") as ei:
            repro.SelectionPlan(backend="mpi")
        for name in available_backends():
            assert name in str(ei.value)

    def test_known_backends_construct(self):
        from repro.machine import available_backends

        for name in available_backends():
            assert repro.SelectionPlan(backend=name).backend == name
        assert repro.SelectionPlan(backend=None).backend is None

    def test_unknown_topology_names_options(self):
        from repro.machine import available_topologies

        with pytest.raises(ConfigurationError, match="unknown topology") as ei:
            repro.SelectionPlan(topology="torus")
        for name in available_topologies():
            assert name in str(ei.value)

    def test_known_topologies_construct(self):
        from repro.machine import available_topologies

        for name in available_topologies():
            assert repro.SelectionPlan(topology=name).topology == name
        assert repro.SelectionPlan(topology=None).topology is None

    def test_topology_spec_canonicalised(self):
        # Aliases resolve; a two-level cluster size survives.
        assert repro.SelectionPlan(topology="tree").topology == "binomial-tree"
        assert (
            repro.SelectionPlan(topology="two-level:4").topology
            == "two-level:4"
        )

    def test_bad_topology_parameters(self):
        with pytest.raises(ConfigurationError, match="cluster size"):
            repro.SelectionPlan(topology="two-level:0")
        with pytest.raises(ConfigurationError, match="no parameter"):
            repro.SelectionPlan(topology="hypercube:4")

    @pytest.mark.parametrize("field", ["sequential_method", "impl_override"])
    def test_unknown_sequential_method_names_options(self, field):
        with pytest.raises(
            ConfigurationError, match="unknown sequential method"
        ) as ei:
            repro.SelectionPlan(**{field: "bogosort"})
        for name in SEQUENTIAL_METHODS:
            assert name in str(ei.value)

    @pytest.mark.parametrize("field", ["endgame_threshold", "max_iterations"])
    @pytest.mark.parametrize("bad", [-1, 2.5, "many", True])
    def test_bad_limits(self, field, bad):
        with pytest.raises(ConfigurationError):
            repro.SelectionPlan(**{field: bad})

    @pytest.mark.parametrize("field", ["endgame_threshold", "max_iterations"])
    def test_zero_limits_allowed(self, field):
        # 0 is meaningful: the guard fires immediately / threshold clamps.
        assert getattr(repro.SelectionPlan(**{field: 0}), field) == 0

    def test_bad_seed(self):
        with pytest.raises(ConfigurationError, match="seed"):
            repro.SelectionPlan(seed="lucky")
        with pytest.raises(ConfigurationError, match="seed"):
            repro.SelectionPlan(seed=True)

    def test_numpy_integers_coerced(self):
        import numpy as np

        plan = repro.SelectionPlan(
            seed=np.int64(3), max_iterations=np.int32(7),
            endgame_threshold=np.uint16(64),
        )
        assert plan.seed == 3 and type(plan.seed) is int
        assert plan.max_iterations == 7 and type(plan.max_iterations) is int
        assert plan.endgame_threshold == 64
        # The legacy shims accept them too (pre-Session behaviour).
        data = repro.Machine(n_procs=2).generate(100, seed=0)
        a = repro.select(data, 50, seed=np.int64(3))
        b = repro.select(data, 50, seed=3)
        assert a.value == b.value
        assert a.simulated_time == b.simulated_time

    def test_bad_fast_params(self):
        with pytest.raises(ConfigurationError, match="fast_params"):
            repro.SelectionPlan(fast_params={"delta": 0.6})

    def test_every_registered_algorithm_constructs(self):
        for name in ALGORITHMS:
            assert repro.SelectionPlan(algorithm=name).algorithm == name

    def test_balancer_instance_and_class_accepted(self):
        from repro.balance.global_exchange import GlobalExchange

        assert repro.SelectionPlan(balancer=GlobalExchange)
        assert repro.SelectionPlan(balancer=GlobalExchange())
        assert repro.SelectionPlan(balancer=None)


class TestUniformErrorSurface:
    """The same ConfigurationError reaches callers through every entry
    point: plan construction, legacy shims, fluent methods, sessions."""

    @pytest.fixture()
    def data(self):
        return repro.Machine(n_procs=2).generate(100, seed=0)

    def test_legacy_select(self, data):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            repro.select(data, 1, algorithm="quantum")
        with pytest.raises(ConfigurationError, match="unknown balancer"):
            repro.select(data, 1, balancer="wat")
        with pytest.raises(ConfigurationError, match="unknown sequential"):
            repro.select(data, 1, sequential_method="bogosort")

    def test_legacy_multi_select_and_quantiles(self, data):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            repro.multi_select(data, [1, 2], algorithm="quantum")
        with pytest.raises(ConfigurationError, match="unknown balancer"):
            repro.quantiles(data, [0.5], balancer="wat")

    def test_fluent_methods(self, data):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            data.select(1, algorithm="quantum")
        with pytest.raises(ConfigurationError, match="unknown balancer"):
            data.median(balancer="wat")
        with pytest.raises(ConfigurationError, match="unknown sequential"):
            data.quantiles([0.5], sequential_method="bogosort")
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            data.multi_select([1, 2], algorithm="quantum")

    def test_session_queries(self, data):
        session = data.machine.session()
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            session.select(data, 1, algorithm="quantum")
        with pytest.raises(ConfigurationError, match="unknown balancer"):
            session.median(data, balancer="wat")

    def test_session_default_plan_validated(self, data):
        with pytest.raises(ConfigurationError, match="SelectionPlan"):
            repro.Session(data.machine, plan="fast_randomized")


class TestPlanObject:
    def test_frozen(self):
        plan = repro.SelectionPlan()
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.algorithm = "randomized"

    def test_replace_revalidates(self):
        plan = repro.SelectionPlan(algorithm="randomized", seed=3)
        assert plan.replace(seed=4).seed == 4
        assert plan.replace(seed=4).algorithm == "randomized"
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            plan.replace(algorithm="quantum")

    def test_cache_key_stability(self):
        a = repro.SelectionPlan(algorithm="randomized", seed=1)
        b = repro.SelectionPlan(algorithm="randomized", seed=1)
        c = repro.SelectionPlan(algorithm="randomized", seed=2)
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()

    def test_cache_key_covers_every_knob(self):
        base = repro.SelectionPlan()
        variants = [
            base.replace(algorithm="randomized"),
            base.replace(balancer="omlb"),
            base.replace(seed=9),
            base.replace(sequential_method="deterministic"),
            base.replace(endgame_threshold=128),
            base.replace(max_iterations=7),
            base.replace(fast_params=FastRandomizedParams(delta=0.7)),
            base.replace(impl_override="introselect"),
            base.replace(backend="serial"),
            base.replace(topology="hypercube"),
            base.replace(topology="two-level"),
            base.replace(topology="two-level:2"),
        ]
        keys = {v.cache_key() for v in variants} | {base.cache_key()}
        assert len(keys) == len(variants) + 1

    def test_resolve_paper_default_pairing(self):
        _, cfg, name = repro.SelectionPlan(
            algorithm="median_of_medians"
        ).resolve()
        assert name == "GlobalExchange"
        assert cfg.sequential_method == "deterministic"
        _, cfg, name = repro.SelectionPlan(
            algorithm="fast_randomized"
        ).resolve()
        assert name == "NoBalance"
        assert cfg.sequential_method == "randomized"

    def test_resolve_builds_fresh_balancer_instances(self):
        plan = repro.SelectionPlan(balancer="global_exchange")
        _, cfg1, _ = plan.resolve()
        _, cfg2, _ = plan.resolve()
        assert cfg1.balancer is not cfg2.balancer

    def test_describe_mentions_non_defaults(self):
        text = repro.SelectionPlan(
            algorithm="randomized", max_iterations=5
        ).describe()
        assert "randomized" in text and "max_iterations=5" in text

    def test_describe_mentions_topology(self):
        text = repro.SelectionPlan(topology="two-level:4").describe()
        assert "topology=two-level:4" in text
        assert "topology" not in repro.SelectionPlan().describe()

    def test_as_plan_rejects_non_plan(self):
        with pytest.raises(ConfigurationError, match="SelectionPlan"):
            as_plan("fast_randomized", {})

    def test_as_plan_merges_overrides(self):
        plan = repro.SelectionPlan(seed=1)
        assert as_plan(plan, {"seed": 2}).seed == 2
        assert as_plan(plan, {}) is plan
        assert as_plan(None, {"algorithm": "randomized"}).algorithm == "randomized"
