"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

import repro
from repro.machine import run_spmd, zero_cost_model

# Hypothesis profile: SPMD runs spawn threads, which trips the default
# too-slow health check; examples stay small instead.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


def reference_kth(shards, k: int):
    """Oracle: k-th smallest (1-based) of the union of shards via sorting."""
    full = np.concatenate([np.asarray(s) for s in shards if np.asarray(s).size])
    return np.sort(full)[k - 1]


@pytest.fixture
def machine4():
    return repro.Machine(n_procs=4)


@pytest.fixture
def free_machine4():
    """Four processors with an all-zero cost model (semantic tests)."""
    return repro.Machine(n_procs=4, cost_model=zero_cost_model())


def spmd(fn, p, rank_args=None, **kw):
    """Shorthand for run_spmd in tests."""
    return run_spmd(fn, p, rank_args=rank_args, **kw)
