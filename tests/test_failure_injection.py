"""Failure injection across the stack: a failing rank must surface as a
clean WorkerError, never a hang, wherever the failure happens — on every
execution backend."""

import multiprocessing
import threading
import time

import numpy as np
import pytest

import repro
from repro.balance import get_balancer
from repro.errors import WorkerError
from repro.kernels import CostedKernels
from repro.machine import run_spmd

BACKENDS = ["serial", "threaded", "process", "pool"]


class Poison(Exception):
    """Module-level so it pickles: forked ranks ship the original
    exception type back across the result queue, and a local class would
    degrade the cause to ``UnpicklableWorkerFailure``."""


def _transient_children() -> list:
    """Live child processes, ignoring the pool's persistent workers (they
    outlive launches by design; their own lifecycle is covered by
    ``tests/test_pool_backend.py``)."""
    return [
        pr for pr in multiprocessing.active_children()
        if not pr.name.startswith("repro-pool-")
    ]


def _assert_no_leaked_workers(threads_before: int) -> None:
    """Threads decay to the pre-launch count; no child process survives."""
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if (
            threading.active_count() <= threads_before
            and not _transient_children()
        ):
            return
        time.sleep(0.01)
    assert threading.active_count() <= threads_before, (
        f"leaked threads: {[t.name for t in threading.enumerate()]}"
    )
    assert not _transient_children(), "leaked worker processes"


class TestFailurePhases:
    @pytest.mark.parametrize("fail_at", ["entry", "after_prefix", "in_gather",
                                         "in_alltoall", "at_exit"])
    def test_single_rank_failure_any_phase(self, fail_at):
        def prog(ctx):
            if fail_at == "entry" and ctx.rank == 1:
                raise RuntimeError(fail_at)
            ctx.comm.prefix_sum(1)
            if fail_at == "after_prefix" and ctx.rank == 1:
                raise RuntimeError(fail_at)
            if fail_at == "in_gather" and ctx.rank == 1:
                raise RuntimeError(fail_at)
            ctx.comm.gather(ctx.rank)
            if fail_at == "in_alltoall" and ctx.rank == 1:
                raise RuntimeError(fail_at)
            ctx.comm.alltoallv([None] * ctx.size)
            if fail_at == "at_exit" and ctx.rank == 1:
                raise RuntimeError(fail_at)

        with pytest.raises(WorkerError) as ei:
            run_spmd(prog, 4)
        assert ei.value.rank == 1
        assert str(ei.value.cause) == fail_at

    def test_multiple_simultaneous_failures_report_lowest_rank(self):
        def prog(ctx):
            raise ValueError(f"r{ctx.rank}")

        with pytest.raises(WorkerError) as ei:
            run_spmd(prog, 4)
        assert isinstance(ei.value.cause, ValueError)

    def test_failure_inside_balancer(self):
        def prog(ctx, shard):
            k = CostedKernels(ctx)
            if ctx.rank == 2:
                raise Poison("balancer blew up")
            return get_balancer("global_exchange").rebalance(ctx, k, shard)

        shards = [np.arange(10.0) for _ in range(4)]
        with pytest.raises(WorkerError) as ei:
            run_spmd(prog, 4, rank_args=[(s,) for s in shards])
        assert isinstance(ei.value.cause, Poison)

    def test_machine_usable_after_failure(self):
        m = repro.Machine(n_procs=4)

        def bad(ctx):
            if ctx.rank == 0:
                raise RuntimeError("x")
            ctx.comm.barrier()

        with pytest.raises(WorkerError):
            m.run(bad)
        # The machine (fresh engine per run) still works.
        d = m.generate(1000, seed=0)
        rep = repro.median(d)
        assert rep.value == np.sort(d.gather())[499]

    def test_error_chains_original_traceback(self):
        def prog(ctx):
            if ctx.rank == 0:
                raise ZeroDivisionError("oops")
            ctx.comm.barrier()

        with pytest.raises(WorkerError) as ei:
            run_spmd(prog, 2)
        assert ei.value.__cause__ is ei.value.cause
        assert isinstance(ei.value.cause, ZeroDivisionError)


@pytest.mark.parametrize("backend", BACKENDS)
class TestEveryBackendFailsClean:
    """The backends satellite: a rank raising mid-iteration aborts cleanly
    on each backend — WorkerError chains the original exception, nothing
    leaks, and the Machine keeps serving."""

    def test_mid_iteration_failure_chains_original(self, backend):
        def prog(ctx, shard):
            k = CostedKernels(ctx)
            total = ctx.comm.allreduce_sum(int(shard.size))
            assert total == 40
            k.count3(shard, float(np.median(shard)))
            if ctx.rank == 2:
                raise ValueError("mid-iteration failure")
            ctx.comm.gather(ctx.rank)
            ctx.comm.barrier()

        threads_before = threading.active_count()
        machine = repro.Machine(n_procs=4, backend=backend)
        shards = [np.arange(10.0) + r for r in range(4)]
        with pytest.raises(WorkerError) as ei:
            machine.run(prog, rank_args=[(s,) for s in shards])
        assert ei.value.rank == 2
        assert isinstance(ei.value.cause, ValueError)
        assert str(ei.value.cause) == "mid-iteration failure"
        assert ei.value.__cause__ is ei.value.cause
        _assert_no_leaked_workers(threads_before)

    def test_machine_reusable_after_failure(self, backend):
        machine = repro.Machine(n_procs=4, backend=backend)

        def bad(ctx):
            if ctx.rank == 0:
                raise RuntimeError("x")
            ctx.comm.barrier()

        with pytest.raises(WorkerError):
            machine.run(bad)
        data = machine.generate(1000, seed=0)
        rep = data.median()
        assert rep.value == np.sort(data.gather())[499]
        assert rep.backend == backend

    def test_failure_during_selection_is_clean(self, backend):
        machine = repro.Machine(n_procs=4, backend=backend)
        data = machine.generate(2000, seed=1)

        def poisoned(ctx, shard):
            if ctx.rank == 1:
                raise ZeroDivisionError("poisoned shard")
            # Healthy ranks enter the selection engine and block at its
            # first collective; the abort must unwind them.
            from repro.selection import SelectionConfig, randomized_select

            return randomized_select(
                ctx, shard.copy(), 1, SelectionConfig(seed=0)
            )

        threads_before = threading.active_count()
        with pytest.raises(WorkerError) as ei:
            machine.run(poisoned, rank_args=[(s,) for s in data.shards])
        assert ei.value.rank == 1
        assert isinstance(ei.value.cause, ZeroDivisionError)
        _assert_no_leaked_workers(threads_before)


class TestBadProgramShapes:
    def test_nan_data_still_selects(self):
        # NaN keys would poison comparisons; the library's contract is on
        # totally-ordered inputs, but a NaN-free subset must be unaffected.
        m = repro.Machine(n_procs=2)
        d = m.distribute(np.array([3.0, 1.0, 2.0, 5.0]))
        assert repro.select(d, 2).value == 2.0

    def test_mismatched_shard_dtypes_still_work(self):
        m = repro.Machine(n_procs=2)
        d = m.from_shards([np.arange(5, dtype=np.int64),
                           np.arange(5, dtype=np.float64) + 0.5])
        rep = repro.select(d, 1)
        assert rep.value == 0
