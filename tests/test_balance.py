"""Load balancers: invariants every strategy must satisfy, plus the
strategy-specific guarantees the paper states."""

import numpy as np
import pytest

import repro
from repro.balance import (
    BALANCERS,
    get_balancer,
    imbalance_stats,
    target_counts,
)
from repro.balance.base import NoBalance, TransferPlan
from repro.errors import ConfigurationError
from repro.kernels import CostedKernels
from repro.machine import run_spmd
from repro.machine.topology import log2_ceil

ALL = sorted(BALANCERS)
REAL = [b for b in ALL if b != "none"]


def run_balancer(name, shards, p=None, trace=False):
    p = p if p is not None else len(shards)

    def prog(ctx, shard):
        return get_balancer(name).rebalance(ctx, CostedKernels(ctx), shard)

    return run_spmd(prog, p, rank_args=[(s,) for s in shards], trace=trace)


def make_shards(sizes, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.random(s) for s in sizes]


class TestTargetCounts:
    def test_sums_to_n(self):
        t = target_counts(10, 4)
        assert t.tolist() == [3, 3, 2, 2]

    def test_perfect_division(self):
        assert target_counts(8, 4).tolist() == [2, 2, 2, 2]


class TestRegistry:
    def test_all_expected_names(self):
        assert set(ALL) == {
            "none", "omlb", "modified_omlb", "dimension_exchange",
            "global_exchange",
        }

    def test_get_by_instance_and_class(self):
        nb = NoBalance()
        assert get_balancer(nb) is nb
        assert isinstance(get_balancer(NoBalance), NoBalance)
        assert isinstance(get_balancer(None), NoBalance)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_balancer("wat")


@pytest.mark.parametrize("name", REAL)
class TestUniversalInvariants:
    """Paper Section 4 contract: multiset preserved, counts hit n_avg."""

    @pytest.mark.parametrize("sizes", [
        [40, 0, 0, 0],          # one source, three sinks
        [0, 0, 0, 40],          # source at the end
        [10, 10, 10, 10],       # already balanced
        [1, 2, 3, 4],           # mild imbalance
        [100, 1, 50, 3],        # mixed
        [0, 0, 0, 0],           # empty machine
        [7],                    # single rank
        [13, 0],                # pair
    ])
    def test_multiset_and_balance(self, name, sizes):
        shards = make_shards(sizes)
        res = run_balancer(name, shards)
        outs = res.values
        inp = np.sort(np.concatenate(shards)) if sum(sizes) else np.array([])
        out = (np.sort(np.concatenate([o for o in outs if o.size]))
               if sum(sizes) else np.array([]))
        assert np.array_equal(inp, out), "element multiset changed"
        stats = imbalance_stats([o.size for o in outs])
        slack = log2_ceil(len(sizes)) if name == "dimension_exchange" else 1
        assert stats.spread <= max(slack, 1)

    def test_fewer_elements_than_ranks(self, name):
        shards = make_shards([3, 0, 0, 0, 0])
        res = run_balancer(name, shards)
        sizes = [o.size for o in res.values]
        assert sum(sizes) == 3
        assert max(sizes) <= 1 + (log2_ceil(5) if name == "dimension_exchange" else 0)

    def test_time_attributed_to_balance(self, name):
        shards = make_shards([64, 0, 0, 0])
        res = run_balancer(name, shards)
        assert res.balance_time > 0
        # Nothing should land in the non-balance comm bucket.
        assert all(b.comm == 0 for b in res.breakdowns)

    def test_idempotent_on_balanced_input(self, name):
        shards = make_shards([8, 8, 8, 8])
        res = run_balancer(name, shards)
        outs = res.values
        assert [o.size for o in outs] == [8, 8, 8, 8]

    def test_non_power_of_two(self, name):
        shards = make_shards([30, 0, 5, 0, 0, 12])
        res = run_balancer(name, shards)
        stats = imbalance_stats([o.size for o in res.values])
        slack = log2_ceil(6) if name == "dimension_exchange" else 1
        assert stats.spread <= max(slack, 1)


class TestOMLBOrder:
    def test_preserves_global_order(self):
        # Shards whose concatenation is sorted must stay sorted.
        shards = [np.arange(0, 17, dtype=float), np.arange(17, 20, dtype=float),
                  np.arange(20, 21, dtype=float), np.arange(21, 40, dtype=float)]
        res = run_balancer("omlb", shards)
        flat = np.concatenate(res.values)
        assert np.array_equal(flat, np.arange(40, dtype=float))

    def test_paper_cascade_example(self):
        # Paper 4.1: all ranks have n_avg except P0 (one less) and P_{p-1}
        # (one more): the unmodified algorithm shifts one element through
        # every processor (p-1 messages in total).
        p = 8
        shards = [np.arange(10, dtype=float) + 100 * r for r in range(p)]
        shards[0] = shards[0][:-1]
        shards[-1] = np.append(shards[-1], 999.0)
        res = run_balancer("omlb", shards, trace=True)
        moved = res.tracer.events(op="alltoallv")
        assert moved, "transportation primitive not used"
        # Every rank except the last must send one element leftwards: check
        # final counts are balanced and order preserved.
        assert [o.size for o in res.values] == [10] * 8
        flat = np.concatenate(res.values)
        assert np.array_equal(flat, np.sort(flat))


class TestModifiedOMLBRetention:
    def test_sinks_keep_their_own_elements(self):
        # A sink must retain all of its original elements (only receives).
        shards = [np.full(30, 1.0), np.full(2, 2.0), np.full(4, 3.0)]
        res = run_balancer("modified_omlb", shards)
        out1 = res.values[1]
        assert np.sum(out1 == 2.0) == 2  # originals still there

    def test_source_sends_only_surplus(self):
        shards = [np.full(30, 1.0), np.full(2, 2.0), np.full(4, 3.0)]
        res = run_balancer("modified_omlb", shards)
        out0 = res.values[0]
        assert np.all(out0 == 1.0)
        assert out0.size == 12  # target for n=36, p=3


class TestGlobalExchangePairing:
    def test_biggest_source_feeds_biggest_sink(self):
        # diff = [+30, -20, -10, 0] after targets; the 30-surplus source
        # must send 20 to the neediest sink first.
        shards = [np.full(40, 0.0), np.full(0, 0.0), np.full(0, 0.0), np.full(0, 0.0)]
        # targets = 10 each; diffs = [30, -10, -10, -10] — tie: ranks order.
        res = run_balancer("global_exchange", shards)
        assert [o.size for o in res.values] == [10, 10, 10, 10]

    def test_message_count_is_minimal_for_single_source(self):
        def prog(ctx, shard):
            return get_balancer("global_exchange").rebalance(
                ctx, CostedKernels(ctx), shard
            )

        shards = make_shards([40, 0, 0, 0])
        res = run_spmd(prog, 4, rank_args=[(s,) for s in shards], trace=True)
        ev = res.tracer.events(op="alltoallv", rank=0)
        assert len(ev) == 1
        # detail records max message count; one source -> 3 sinks = 3 msgs.
        assert "max_msgs=3" in ev[0].detail


class TestDimensionExchangePow2:
    def test_block_invariant_after_rounds(self):
        # After all log2(p) rounds on p=8, counts differ by <= log2(p).
        shards = make_shards([80, 0, 0, 0, 0, 0, 0, 0])
        res = run_balancer("dimension_exchange", shards)
        sizes = [o.size for o in res.values]
        assert sum(sizes) == 80
        assert max(sizes) - min(sizes) <= 3

    def test_exact_balance_on_power_of_two_counts(self):
        shards = make_shards([16, 0, 0, 0])
        res = run_balancer("dimension_exchange", shards)
        assert [o.size for o in res.values] == [4, 4, 4, 4]

    def test_uses_pairwise_rounds_not_alltoall(self):
        shards = make_shards([32, 0, 0, 0])

        def prog(ctx, shard):
            return get_balancer("dimension_exchange").rebalance(
                ctx, CostedKernels(ctx), shard
            )

        res = run_spmd(prog, 4, rank_args=[(s,) for s in shards], trace=True)
        assert res.tracer.count("alltoallv") == 0
        # 2 dims x 2 exchanges (counts + data) x 4 ranks.
        assert res.tracer.count("pairwise_exchange") == 16


class TestTransferPlan:
    def test_message_count_excludes_self(self):
        plan = TransferPlan(send_counts=np.array([3, 0, 2, 1]), owner=0)
        assert plan.messages == 2
        assert plan.words == 6

    def test_no_owner_given(self):
        plan = TransferPlan(send_counts=np.array([1, 1]))
        assert plan.messages == 2


class TestRebalanceAPI:
    def test_public_rebalance(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(100, distribution="skewed_shards", seed=1)
        assert d.imbalance().spread > 1
        out, result = repro.rebalance(d, method="global_exchange")
        assert out.imbalance().spread <= 1
        assert out.n == 100
        assert result.balance_time > 0
