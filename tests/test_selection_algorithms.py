"""The four selection algorithms (+hybrids) against a sorting oracle.

This is the core correctness grid: every algorithm x input distribution x
machine size x target rank, plus the algorithm-specific behaviours the paper
describes (iteration counts, balancing defaults, duplicate handling).
"""

import numpy as np
import pytest

import repro
from repro.selection import ALGORITHMS

ALGOS = sorted(ALGORITHMS)
N = 3000


def oracle(darr, k):
    return np.sort(darr.gather())[k - 1]


@pytest.mark.parametrize("algo", ALGOS)
class TestCorrectnessGrid:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("dist", ["random", "sorted"])
    def test_median_everywhere(self, algo, p, dist):
        m = repro.Machine(n_procs=p)
        d = m.generate(N, distribution=dist, seed=17)
        rep = repro.median(d, algorithm=algo, seed=5)
        assert rep.value == oracle(d, (N + 1) // 2)

    @pytest.mark.parametrize("dist", [
        "reverse_sorted", "gaussian", "zipf", "few_distinct", "all_equal",
        "organ_pipe", "skewed_shards",
    ])
    def test_stress_distributions(self, algo, dist):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, distribution=dist, seed=3)
        k = N // 3
        rep = repro.select(d, k, algorithm=algo, seed=1)
        assert rep.value == oracle(d, k)

    @pytest.mark.parametrize("k", [1, 2, N - 1, N])
    def test_extreme_ranks(self, algo, k):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, distribution="random", seed=23)
        rep = repro.select(d, k, algorithm=algo, seed=2)
        assert rep.value == oracle(d, k)

    def test_tiny_input(self, algo):
        m = repro.Machine(n_procs=4)
        d = m.generate(5, distribution="random", seed=0)
        for k in range(1, 6):
            assert repro.select(d, k, algorithm=algo).value == oracle(d, k)

    def test_n_smaller_than_p(self, algo):
        m = repro.Machine(n_procs=8)
        d = m.generate(3, distribution="random", seed=4)
        assert repro.select(d, 2, algorithm=algo).value == oracle(d, 2)

    def test_invalid_rank(self, algo):
        m = repro.Machine(n_procs=2)
        d = m.generate(10, seed=0)
        with pytest.raises(repro.ReproError):
            repro.select(d, 0, algorithm=algo)
        with pytest.raises(repro.ReproError):
            repro.select(d, 11, algorithm=algo)

    @pytest.mark.parametrize("balancer", [
        "none", "modified_omlb", "dimension_exchange", "global_exchange", "omlb",
    ])
    def test_every_balancer_pairing(self, algo, balancer):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, distribution="sorted", seed=9)
        k = N // 2
        rep = repro.select(d, k, algorithm=algo, balancer=balancer, seed=7)
        assert rep.value == oracle(d, k)

    def test_input_shards_not_mutated(self, algo):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, distribution="random", seed=31)
        before = [s.copy() for s in d.shards]
        repro.median(d, algorithm=algo)
        for a, b in zip(before, d.shards):
            assert np.array_equal(a, b)

    def test_report_fields(self, algo):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, seed=2)
        rep = repro.median(d, algorithm=algo)
        assert rep.algorithm == algo
        assert rep.n == N and rep.p == 4
        assert rep.simulated_time > 0
        assert rep.wall_time > 0
        assert rep.breakdown.total == pytest.approx(rep.simulated_time)
        assert rep.stats.n_iterations >= 0


class TestStatsEvidence:
    def test_iterations_shrink_n(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(20_000, seed=1)
        rep = repro.median(d, algorithm="randomized")
        for it in rep.stats.iterations:
            if it.n_after:
                assert it.n_after < it.n_before

    def test_mom_guaranteed_shrink_fraction(self):
        # Median-of-medians guarantees >= ~1/4 discarded with balanced loads.
        m = repro.Machine(n_procs=4)
        d = m.generate(40_000, seed=6)
        rep = repro.median(d, algorithm="median_of_medians")
        for it in rep.stats.iterations[:-1]:
            if it.n_after:
                assert it.shrink <= 0.80

    def test_randomized_iteration_count_logn(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(1 << 16, seed=8)
        rep = repro.median(d, algorithm="randomized")
        # Expected ~log2(n / p^2) with generous slack.
        assert rep.stats.n_iterations <= 3 * 16

    def test_fast_randomized_iteration_count_loglogn(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(1 << 18, seed=8)
        rep = repro.median(d, algorithm="fast_randomized")
        assert rep.stats.n_iterations <= 10  # O(log log n) + rescues

    def test_balance_invocations_counted(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(20_000, distribution="sorted", seed=1)
        rep = repro.median(d, algorithm="randomized", balancer="global_exchange")
        assert rep.stats.balance_invocations == sum(
            1 for it in rep.stats.iterations if it.balanced
        )
        assert rep.stats.balance_invocations > 0
        assert rep.balance_time > 0

    def test_no_balancer_means_zero_balance_time(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(20_000, seed=1)
        rep = repro.median(d, algorithm="randomized", balancer="none")
        assert rep.balance_time == 0.0

    def test_mom_default_balancer_is_global_exchange(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(20_000, seed=1)
        rep = repro.median(d, algorithm="median_of_medians")  # "default"
        assert rep.balancer == "GlobalExchange"
        assert rep.balance_time > 0

    def test_randomized_default_is_no_balancer(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(20_000, seed=1)
        rep = repro.median(d, algorithm="randomized")
        assert rep.balancer == "NoBalance"

    def test_found_by_pivot_consistency(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, distribution="all_equal", seed=0)
        rep = repro.median(d, algorithm="randomized")
        # All-equal input: the first pivot hits the target band immediately.
        assert rep.stats.found_by_pivot
        assert rep.stats.n_iterations == 1

    def test_endgame_threshold_override(self):
        m = repro.Machine(n_procs=2)
        d = m.generate(N, seed=1)
        rep = repro.median(d, algorithm="randomized", endgame_threshold=N + 1)
        # Threshold above n: straight to the endgame, no iterations.
        assert rep.stats.n_iterations == 0
        assert rep.value == oracle(d, (N + 1) // 2)

    def test_max_iterations_guard_fires(self):
        m = repro.Machine(n_procs=2)
        d = m.generate(50_000, seed=1)
        with pytest.raises(repro.WorkerError) as ei:
            repro.median(d, algorithm="randomized", max_iterations=0)
        assert isinstance(ei.value.cause, repro.ConvergenceError)


class TestDuplicateTermination:
    """DESIGN.md deviation #1: 3-way split terminates where 2-way livelocks."""

    @pytest.mark.parametrize("algo", ALGOS)
    def test_all_equal_terminates_quickly(self, algo):
        m = repro.Machine(n_procs=4)
        d = m.generate(4096, distribution="all_equal", seed=0)
        rep = repro.median(d, algorithm=algo)
        assert rep.value == 42
        assert rep.stats.n_iterations <= 3

    def test_two_values_alternating(self):
        m = repro.Machine(n_procs=4)
        shards = [np.array([0, 1] * 200) for _ in range(4)]
        d = m.from_shards(shards)
        for k, expect in [(1, 0), (800, 0), (801, 1), (1600, 1)]:
            rep = repro.select(d, k, algorithm="randomized")
            assert rep.value == expect


class TestHybrids:
    def test_hybrid_faster_than_deterministic_parent(self):
        m = repro.Machine(n_procs=8)
        d = m.generate(1 << 17, seed=4)
        mom = repro.median(d, algorithm="median_of_medians")
        hyb = repro.median(d, algorithm="hybrid_median_of_medians")
        assert hyb.value == mom.value
        assert hyb.simulated_time < mom.simulated_time

    def test_hybrid_stats_algorithm_name(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, seed=4)
        rep = repro.median(d, algorithm="hybrid_bucket_based")
        assert rep.stats.algorithm == "hybrid_bucket_based"


class TestImplOverride:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_override_changes_nothing_observable(self, algo):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, distribution="random", seed=12)
        a = repro.median(d, algorithm=algo, seed=3)
        b = repro.median(d, algorithm=algo, seed=3, impl_override="introselect")
        assert a.value == b.value
        assert a.simulated_time == pytest.approx(b.simulated_time)
        assert a.stats.n_iterations == b.stats.n_iterations
