"""The benchmark harness itself: grid runner, figures registry, renderer."""

import pytest

from repro.bench.figures import EXPERIMENTS, SCALES, run_experiment
from repro.bench.harness import (
    PointResult,
    run_backend_point,
    run_point,
    run_series,
    run_session_point,
)
from repro.bench.report import (
    fmt_time,
    render_bar_rows,
    render_series_table,
    write_csv,
)
from repro.bench.tables import TABLE1_ROWS, TABLE2_ROWS, table1, table2
from repro.errors import ConfigurationError
from repro.machine import zero_cost_model


class TestRunPoint:
    def test_basic_fields(self):
        pt = run_point("randomized", 4096, 4, distribution="random",
                       balancer="none", trials=2)
        assert pt.n == 4096 and pt.p == 4
        assert pt.trials == 2 and len(pt.simulated_times) == 2
        assert pt.simulated_time > 0 and pt.wall_time > 0
        assert pt.iterations > 0
        assert pt.balance_time == 0.0  # no balancer

    def test_session_point_metrics_and_labels(self):
        pt = run_session_point("randomized", 4096, 4, q=3,
                               balancer="global_exchange")
        assert pt.flush_launches == 1 and pt.replay_launches == 0
        assert pt.replay_hits == 3
        assert 0 < pt.flush_simulated < pt.independent_simulated
        assert pt.flush_balance > 0 and pt.independent_balance > 0
        flush_row, indep_row = pt.as_points()
        # Exported rows carry the real configuration and metrics, not
        # placeholder zeros.
        assert flush_row.balancer == "global_exchange"
        assert indep_row.balancer == "global_exchange"
        assert flush_row.wall_time > 0 and flush_row.iterations > 0
        assert indep_row.wall_time > 0 and indep_row.iterations > 0
        assert "session-flush(q=3)" in flush_row.algorithm
        assert "3x select" in indep_row.algorithm

    def test_balancer_reports_balance_time(self):
        pt = run_point("randomized", 4096, 4, distribution="sorted",
                       balancer="global_exchange")
        assert pt.balance_time > 0

    def test_trials_average(self):
        pt = run_point("randomized", 8192, 4, trials=3)
        assert pt.simulated_time == pytest.approx(
            sum(pt.simulated_times) / 3
        )

    def test_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError):
            run_point("randomized", 1024, 2, trials=0)

    def test_explicit_rank(self):
        pt = run_point("randomized", 4096, 4, k=1)
        assert pt.simulated_time > 0

    def test_custom_cost_model(self):
        pt = run_point("randomized", 4096, 4, cost_model=zero_cost_model())
        assert pt.simulated_time == 0.0

    def test_as_row_keys(self):
        row = run_point("randomized", 1024, 2).as_row()
        assert {"algorithm", "n", "p", "simulated_time_s",
                "balance_time_s"} <= set(row)

    def test_label(self):
        pt = run_point("randomized", 1024, 2)
        assert "randomized" in pt.label and "p=2" in pt.label


class TestRunBackendPoint:
    def test_fields_and_agreement(self):
        pt = run_backend_point("randomized", 4096, 4, trials=2)
        assert pt.backends == ("serial", "threaded", "process")
        assert pt.values_agree and pt.simulated_times_agree
        assert all(w > 0 for w in pt.wall_times.values())
        assert pt.speedup("serial", "threaded") > 0
        rows = pt.as_points()
        assert [r.algorithm for r in rows] == [
            "randomized@serial", "randomized@threaded", "randomized@process"
        ]
        assert len({r.simulated_time for r in rows}) == 1

    def test_backend_subset_and_speedup_guard(self):
        pt = run_backend_point(
            "fast_randomized", 2048, 2, backends=("serial", "threaded")
        )
        with pytest.raises(ConfigurationError, match="speedup"):
            pt.speedup("process", "threaded")

    def test_rejects_bad_trials(self):
        with pytest.raises(ConfigurationError, match="trials"):
            run_backend_point("randomized", 1024, 2, trials=0)


class TestRunPoolPoint:
    def test_fields_agreement_and_fork_receipt(self):
        from repro.bench.harness import run_pool_point

        pt = run_pool_point("randomized", 4096, 4, launches=3)
        assert pt.backends == ("threaded", "process", "pool")
        assert pt.launches == 3
        assert pt.values_agree and pt.simulated_times_agree
        assert all(len(v) == 3 for v in pt.values.values())
        assert all(w > 0 for w in pt.wall_times.values())
        # The pool's receipt: the whole sequence cost one fork; the
        # in-process backends track zero.
        assert pt.fork_counts["pool"] == 1
        assert pt.fork_counts["threaded"] == 0
        assert pt.per_launch("pool") == pt.wall_times["pool"] / 3
        assert pt.speedup("threaded", "process") > 0
        rows = pt.as_points()
        assert {r.algorithm for r in rows} == {
            "randomized@threaded", "randomized@process", "randomized@pool"
        }
        assert any(r.iterations == 1.0 for r in rows)  # the fork column
        payload = pt.as_json()
        assert payload["experiment"] == "pool"
        assert payload["fork_counts"]["pool"] == 1
        assert payload["values_agree"] and payload["simulated_times_agree"]

    def test_backend_subset_and_guards(self):
        from repro.bench.harness import run_pool_point

        pt = run_pool_point(
            "fast_randomized", 2048, 2, backends=("serial", "threaded"),
            launches=2,
        )
        with pytest.raises(ConfigurationError, match="speedup"):
            pt.speedup()  # pool/process not measured
        with pytest.raises(ConfigurationError, match="trials"):
            run_pool_point("randomized", 1024, 2, trials=0)
        with pytest.raises(ConfigurationError, match="launches"):
            run_pool_point("randomized", 1024, 2, launches=0)


class TestRunTopologyPoint:
    def test_fields_agreement_and_hierarchy(self):
        from repro.bench.harness import run_topology_point

        pt = run_topology_point("randomized", 4096, 4, trace=True)
        assert pt.topologies == (
            "crossbar", "binomial-tree", "hypercube", "two-level"
        )
        assert pt.values_agree
        # Slow inter-cluster links hurt the two-level shape only.
        assert pt.hierarchical_times["crossbar"] == \
            pt.simulated_times["crossbar"]
        assert pt.hierarchical_times["two-level"] > \
            pt.simulated_times["two-level"]
        assert pt.slowdown("two-level", hierarchical=True) > 1.0
        # Traced runs carry per-collective round evidence.
        assert pt.rounds["hypercube"]
        rows = pt.as_points()
        assert any(r.algorithm == "randomized@crossbar" for r in rows)
        assert any(r.algorithm == "randomized@two-level/hier" for r in rows)

    def test_topology_subset_and_slowdown_guard(self):
        from repro.bench.harness import run_topology_point
        from repro.errors import ConfigurationError

        pt = run_topology_point(
            "fast_randomized", 2048, 2, topologies=("crossbar", "hypercube")
        )
        with pytest.raises(ConfigurationError, match="slowdown"):
            pt.slowdown("two-level")
        with pytest.raises(ConfigurationError, match="trials"):
            run_topology_point("randomized", 1024, 2, trials=0)


class TestRunSeries:
    def test_sweeps_p(self):
        pts = run_series("randomized", 4096, [2, 4, 8])
        assert [pt.p for pt in pts] == [2, 4, 8]


class TestRegistry:
    def test_experiment_ids(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "hybrid",
            "ablation-delta", "ablation-partition", "multiselect", "obs",
            "planner", "session", "backend", "pool", "stream", "topology",
            "serve",
        }

    def test_scales(self):
        assert set(SCALES) == {"small", "half", "paper"}
        for cfg in SCALES.values():
            assert {"n_list", "p_sweep", "bar_p_sweep", "trials",
                    "n_big"} <= set(cfg)

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99")

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            run_experiment("fig1", scale="galactic")


class TestTables:
    def test_formula_rows_present(self):
        assert len(TABLE1_ROWS) == 4 and len(TABLE2_ROWS) == 4
        assert any("log log" in f for _, f in TABLE2_ROWS)

    def test_table_results_render(self):
        res = table1("small")
        assert "Table 1" in res.text
        assert res.points  # scaling check ran
        res2 = table2("small")
        assert "worst-case" in res2.text.lower() or "Table 2" in res2.text


class TestReport:
    def _points(self):
        return [
            PointResult("randomized", "none", "random", 1024, p,
                        simulated_time=0.01 * p, balance_time=0.001,
                        wall_time=0.1, iterations=5, trials=1)
            for p in (2, 4)
        ]

    def test_series_table_contains_all_p(self):
        text = render_series_table("t", {"series-a": self._points()})
        assert "   2" in text and "   4" in text
        assert "series-a" in text

    def test_bar_rows(self):
        text = render_bar_rows("bars", self._points())
        assert "balance" in text
        assert "none" in text

    def test_fmt_time_units(self):
        assert fmt_time(2.5).strip().endswith("s")
        assert "ms" in fmt_time(0.01)

    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", self._points())
        content = path.read_text().splitlines()
        assert content[0].startswith("algorithm,")
        assert len(content) == 3
