"""Fast-vs-reference kernel differential suite.

The contract (``repro.kernels.dispatch``): fast kernels are wall-clock
optimisations only — values, RNG/pivot streams AND simulated charges must
be bit-identical to the reference kernels, for every algorithm, on
adversarial data included. Charges are enforced structurally (they are
computed before the executing kernel is chosen), so these tests pin the
value/order side of the contract plus the end-to-end evidence."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro
from repro.errors import ConfigurationError
from repro.kernels import KERNELS_ENV_VAR
from repro.kernels.buckets import LocalBuckets
from repro.kernels.dispatch import default_kernels_mode, resolve_kernels
from repro.kernels.fast import (
    fast_build_buckets,
    fast_partition3,
    fast_partition_multiway,
)
from repro.kernels.partition import partition3, partition_multiway
from repro.selection import ALGORITHMS

P = 4
N = 1500
DISTRIBUTIONS = ["random", "sorted", "few_distinct", "skewed_shards"]


# --------------------------------------------------------------------------
# End-to-end: every algorithm, every distribution, both entry points
# --------------------------------------------------------------------------


def _machine():
    return repro.Machine(n_procs=P)


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
class TestFastVsReferenceEndToEnd:
    def test_select_bit_identical(self, algorithm, distribution):
        data = _machine().generate(N, distribution=distribution, seed=2)
        ref = data.select(N // 3, algorithm=algorithm, seed=2,
                          kernels="reference")
        fast = data.select(N // 3, algorithm=algorithm, seed=2,
                           kernels="fast")
        assert not fast.cached  # kernels is part of the plan cache key
        assert ref.value == fast.value
        assert ref.simulated_time == fast.simulated_time
        assert ref.breakdown == fast.breakdown
        assert ref.result.clocks == fast.result.clocks
        assert ref.result.breakdowns == fast.result.breakdowns
        assert ref.stats.n_iterations == fast.stats.n_iterations
        assert [it.pivot for it in ref.stats.iterations] == [
            it.pivot for it in fast.stats.iterations
        ], "fast kernels perturbed the pivot stream"

    def test_multi_select_bit_identical(self, algorithm, distribution):
        data = _machine().generate(N, distribution=distribution, seed=2)
        ks = [1, N // 4, N // 2, (3 * N) // 4, N]
        ref = data.multi_select(ks, algorithm=algorithm, seed=2,
                                kernels="reference")
        fast = data.multi_select(ks, algorithm=algorithm, seed=2,
                                 kernels="fast")
        assert ref.values == fast.values
        assert ref.simulated_time == fast.simulated_time
        assert ref.breakdown == fast.breakdown
        assert ref.result.clocks == fast.result.clocks


class TestFastModePlumbing:
    def test_plan_rejects_unknown_kernel_mode(self):
        with pytest.raises(
            ConfigurationError,
            match=r"unknown kernel mode 'simd'; "
                  r"available: \['fast', 'reference'\]",
        ):
            repro.SelectionPlan(kernels="simd")

    def test_env_var_sets_the_default(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, "fast")
        assert default_kernels_mode() == "fast"
        assert resolve_kernels(None) == "fast"
        # An explicit plan mode beats the env default.
        assert resolve_kernels("reference") == "reference"

    def test_env_var_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, "turbo")
        with pytest.raises(ConfigurationError, match="REPRO_KERNELS"):
            default_kernels_mode()

    def test_kernels_in_cache_key_and_describe(self):
        ref = repro.SelectionPlan(kernels="reference")
        fast = repro.SelectionPlan(kernels="fast")
        assert ref.cache_key() != fast.cache_key()
        assert "kernels=fast" in fast.describe()

    def test_fast_under_sketch_prefilter(self):
        data = _machine().generate(4000, distribution="zipf", seed=8)
        ref = data.select(1234, prefilter="sketch", seed=8)
        fast = data.select(1234, prefilter="sketch", seed=8, kernels="fast")
        assert ref.value == fast.value
        assert ref.simulated_time == fast.simulated_time

    def test_fast_kernels_on_pool_backend(self):
        data = _machine().generate(2000, distribution="few_distinct", seed=9)
        ref = data.select(500, seed=9)
        fast = data.select(500, seed=9, kernels="fast", backend="pool")
        assert fast.backend == "pool"
        assert ref.value == fast.value
        assert ref.simulated_time == fast.simulated_time


# --------------------------------------------------------------------------
# Kernel-level properties on adversarial inputs
# --------------------------------------------------------------------------

# Duplicate-heavy / near-constant / empty arrays are exactly where a split
# kernel's tie handling can diverge; tiny value pools force ties.
adversarial_arrays = st.one_of(
    st.just(np.array([])),
    st.lists(
        st.sampled_from([0.0, 1.0, 1.0, 1.0, 2.0, 7.5]), max_size=120
    ).map(np.array),
    st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        max_size=80,
    ).map(np.array),
)


def _assert_identical_arrays(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)


class TestKernelProperties:
    @given(arr=adversarial_arrays, data=st.data())
    def test_partition3_identical_including_order(self, arr, data):
        pool = np.concatenate([arr, [0.0, 1.0]])
        pivot = data.draw(st.sampled_from(list(pool)))
        ref = partition3(arr, pivot)
        fast = fast_partition3(arr, pivot)
        assert (ref.n_lt, ref.n_eq, ref.n_gt) == (
            fast.n_lt, fast.n_eq, fast.n_gt
        )
        _assert_identical_arrays(
            [ref.lt, ref.eq, ref.gt], [fast.lt, fast.eq, fast.gt]
        )

    @given(arr=adversarial_arrays, data=st.data())
    def test_partition_multiway_identical_including_order(self, arr, data):
        pool = np.unique(np.concatenate([arr, [0.0, 1.0, 2.0]]))
        n_cuts = data.draw(st.integers(1, min(len(pool), 12)))
        cuts = np.sort(
            data.draw(
                st.permutations(list(pool)).map(lambda x: x[:n_cuts])
            )
        )
        _assert_identical_arrays(
            partition_multiway(arr, cuts),
            fast_partition_multiway(arr, cuts),
        )

    @given(arr=adversarial_arrays, n_buckets=st.integers(1, 16))
    def test_buckets_equivalent(self, arr, n_buckets):
        ref = LocalBuckets.build(arr, n_buckets)
        fast = fast_build_buckets(arr, n_buckets)
        fast.check_invariants()
        assert ref.n_buckets == fast.n_buckets
        assert ref.total == fast.total
        np.testing.assert_array_equal(ref._sizes, fast._sizes)
        np.testing.assert_array_equal(ref._mins, fast._mins)
        np.testing.assert_array_equal(ref._maxs, fast._maxs)
        # Same multiset per bucket (intra-bucket order is free).
        for rb, fb in zip(ref._buckets, fast._buckets):
            np.testing.assert_array_equal(np.sort(rb), np.sort(fb))
        if arr.size:
            ks = sorted({1, arr.size // 2 + 1, arr.size})
            assert [ref.kth(k)[0] for k in ks] == [
                fast.kth(k)[0] for k in ks
            ]

    def test_multiway_validation_matches_reference(self):
        arr = np.arange(6.0)
        for bad_cuts in ([], [[1.0, 2.0]], [2.0, 1.0], [1.0, 1.0]):
            with pytest.raises(ConfigurationError):
                partition_multiway(arr, bad_cuts)
            with pytest.raises(ConfigurationError):
                fast_partition_multiway(arr, bad_cuts)
