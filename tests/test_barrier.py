"""Unit tests for the abortable sense-reversing barrier."""

import threading
import time

import pytest

from repro.errors import ConfigurationError, WorkerAborted
from repro.machine.barrier import AbortableBarrier


def run_threads(n, target):
    threads = [threading.Thread(target=target, args=(i,), daemon=True) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert not any(t.is_alive() for t in threads)


class TestBasics:
    def test_rejects_zero_parties(self):
        with pytest.raises(ConfigurationError):
            AbortableBarrier(0)

    def test_single_party_never_blocks(self):
        b = AbortableBarrier(1)
        for gen in range(5):
            assert b.wait(timeout=1) == gen

    def test_rendezvous_and_reuse(self):
        b = AbortableBarrier(4)
        counter = {"v": 0}
        lock = threading.Lock()
        generations = []

        def worker(i):
            for _ in range(10):
                with lock:
                    counter["v"] += 1
                gen = b.wait(timeout=10)
                if i == 0:
                    generations.append((gen, counter["v"]))
                b.wait(timeout=10)

        run_threads(4, worker)
        # After each first barrier of a round, all 4 increments are visible.
        assert [v for _, v in generations] == [4 * (i + 1) for i in range(10)]

    def test_timeout(self):
        b = AbortableBarrier(2)
        with pytest.raises(TimeoutError):
            b.wait(timeout=0.05)


class TestAbort:
    def test_abort_wakes_waiters(self):
        b = AbortableBarrier(3)
        failures = []

        def waiter(i):
            try:
                b.wait(timeout=10)
            except WorkerAborted:
                failures.append(i)

        threads = [threading.Thread(target=waiter, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        b.abort()
        for t in threads:
            t.join(timeout=5)
        assert sorted(failures) == [0, 1]

    def test_abort_is_sticky(self):
        b = AbortableBarrier(1)
        b.abort()
        with pytest.raises(WorkerAborted):
            b.wait(timeout=1)
        with pytest.raises(WorkerAborted):
            b.wait(timeout=1)

    def test_aborted_flag(self):
        b = AbortableBarrier(2)
        assert not b.aborted
        b.abort()
        assert b.aborted
