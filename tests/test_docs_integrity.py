"""Documentation integrity: the deliverable docs exist, cross-reference the
real artefacts, and every public module carries a docstring."""

import importlib
import pkgutil
from pathlib import Path

import repro

ROOT = Path(__file__).parent.parent


class TestDeliverableDocs:
    def test_design_md(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "Paper verified" in text
        # The experiment index must cover every table/figure.
        for exp in ["T1", "T2", "F1", "F2", "F3", "F4", "F5", "F6", "H1"]:
            assert f"| {exp} " in text, f"experiment {exp} missing from index"
        # Substitution table present.
        assert "CM-5" in text and "two-level" in text

    def test_experiments_md(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "paper vs" in text.lower()
        assert "deviation d1" in text.lower()
        # Headline measured numbers recorded.
        assert "18.9x" in text and "9.6x" in text

    def test_readme(self):
        text = (ROOT / "README.md").read_text()
        assert "pip install -e ." in text
        assert "python -m repro.bench" in text
        for example in ["quickstart", "distributed_quantiles",
                        "parallel_sort_pivot", "load_balance_demo"]:
            assert example in text

    def test_experiment_ids_in_design_match_cli(self):
        from repro.bench.cli import ALL_IDS

        design = (ROOT / "DESIGN.md").read_text()
        for exp_id in ALL_IDS:
            assert exp_id in design, f"{exp_id} not documented in DESIGN.md"

    def test_bench_modules_exist_per_figure(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        for expected in [
            "bench_table1_expected.py", "bench_table2_worstcase.py",
            "bench_fig1_algorithms.py", "bench_fig2_randomized_lb.py",
            "bench_fig3_fastrand_lb.py", "bench_fig4_sorted_best.py",
            "bench_fig5_lb_time_randomized.py",
            "bench_fig6_lb_time_fastrand.py", "bench_hybrid_experiment.py",
            "bench_ablation_partition.py", "bench_ablation_delta.py",
            "bench_baseline_sort.py",
        ]:
            assert expected in benches


class TestDocstrings:
    def _walk_modules(self):
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue  # importing it would execute the CLI
            yield info.name

    def test_every_module_has_docstring(self):
        missing = []
        for name in self._walk_modules():
            mod = importlib.import_module(name)
            if not (mod.__doc__ or "").strip():
                missing.append(name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_api_has_docstrings(self):
        for obj in [repro.select, repro.median, repro.quantiles,
                    repro.rebalance, repro.Machine, repro.DistributedArray,
                    repro.SelectionReport]:
            assert (obj.__doc__ or "").strip(), f"{obj} lacks a docstring"
