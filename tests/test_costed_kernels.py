"""CostedKernels: every kernel does the work AND charges the right cost."""

import numpy as np
import pytest

from repro.kernels import CostedKernels
from repro.kernels.buckets import BucketScan
from repro.machine import CM5, run_spmd


def run_with_kernels(fn):
    """Run fn(K, ctx) on one rank; return (result, compute_seconds)."""

    def prog(ctx):
        K = CostedKernels(ctx)
        out = fn(K, ctx)
        return out, ctx.clock.breakdown().compute

    res = run_spmd(prog, 1)
    return res.values[0]


class TestPartitionCharges:
    def test_partition3_charges_per_element(self):
        arr = np.arange(1000.0)
        (_, cost) = run_with_kernels(lambda K, ctx: K.partition3(arr, 500.0))
        assert cost == pytest.approx(1000 * CM5.compute.partition)

    def test_partition2(self):
        arr = np.arange(100.0)
        (parts, cost) = run_with_kernels(lambda K, ctx: K.partition2(arr, 50.0))
        assert parts.n_le == 51
        assert cost == pytest.approx(100 * CM5.compute.partition)

    def test_count3(self):
        arr = np.arange(64.0)
        (counts, cost) = run_with_kernels(lambda K, ctx: K.count3(arr, 10.0))
        assert counts == (10, 1, 53)
        assert cost > 0

    def test_partition_band(self):
        arr = np.arange(10.0)
        ((lo, mid, hi), cost) = run_with_kernels(
            lambda K, ctx: K.partition_band(arr, 3.0, 6.0)
        )
        assert mid.tolist() == [3, 4, 5, 6]


class TestSelectCharges:
    def test_method_sets_price_not_impl(self):
        arr = np.random.default_rng(0).random(2000)

        (_, det_cost) = run_with_kernels(
            lambda K, ctx: K.select_kth(arr, 1000, "deterministic",
                                        impl="introselect")
        )
        (_, rnd_cost) = run_with_kernels(
            lambda K, ctx: K.select_kth(arr, 1000, "randomized",
                                        impl="introselect")
        )
        assert det_cost == pytest.approx(2000 * CM5.compute.select_deterministic)
        assert rnd_cost == pytest.approx(2000 * CM5.compute.select_randomized)

    def test_value_same_across_impls(self):
        arr = np.random.default_rng(1).random(999)
        (a, _) = run_with_kernels(
            lambda K, ctx: K.select_kth(arr, 500, "deterministic")
        )
        (b, _) = run_with_kernels(
            lambda K, ctx: K.select_kth(arr, 500, "deterministic",
                                        impl="introselect")
        )
        assert a == b

    def test_local_median(self):
        arr = np.array([3.0, 1.0, 2.0])
        (v, _) = run_with_kernels(lambda K, ctx: K.local_median(arr, "randomized"))
        assert v == 2.0

    def test_sort_charges_nlogn(self):
        arr = np.random.default_rng(2).random(1024)
        (_, cost) = run_with_kernels(lambda K, ctx: K.sort(arr))
        assert cost == pytest.approx(CM5.compute.sort_per_cmp * 1024 * 10)


class TestBucketCharges:
    def test_build_buckets_charges(self):
        arr = np.random.default_rng(3).random(512)
        (b, cost) = run_with_kernels(lambda K, ctx: K.build_buckets(arr, 8))
        assert b.total == 512
        assert cost > 0

    def test_scan_evidence_partition_vs_select(self):
        scan = BucketScan(touched=100, probes=3)

        (_, part_cost) = run_with_kernels(
            lambda K, ctx: K.charge_scan_evidence(scan)
        )
        (_, sel_cost) = run_with_kernels(
            lambda K, ctx: K.charge_scan_evidence(scan,
                                                  select_method="deterministic")
        )
        assert sel_cost > part_cost


class TestMiscCharges:
    def test_weighted_median(self):
        (v, cost) = run_with_kernels(
            lambda K, ctx: K.weighted_median(np.array([1.0, 5.0]),
                                             np.array([1.0, 3.0]))
        )
        assert v == 5.0 and cost > 0

    def test_rng_draw(self):
        (_, cost) = run_with_kernels(lambda K, ctx: K.rng_draw())
        assert cost == pytest.approx(CM5.compute.rng_draw)

    def test_scan_pass(self):
        (_, cost) = run_with_kernels(lambda K, ctx: K.scan_pass(100))
        assert cost == pytest.approx(100 * CM5.compute.scan)

    def test_scan_pass_negative_clamped(self):
        (_, cost) = run_with_kernels(lambda K, ctx: K.scan_pass(-10))
        assert cost == 0.0
