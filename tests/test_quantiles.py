"""The quantiles() convenience API."""

import math

import numpy as np
import pytest

import repro
from repro.errors import ConfigurationError


class TestQuantiles:
    def test_matches_sorted_oracle(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(10_000, distribution="gaussian", seed=2)
        ref = np.sort(d.gather())
        qs = [0.01, 0.25, 0.5, 0.9, 0.999, 1.0]
        reports = repro.quantiles(d, qs)
        for q, rep in zip(qs, reports):
            k = max(1, math.ceil(q * d.n))
            assert rep.value == ref[k - 1]
            assert rep.k == k

    def test_median_equivalence(self):
        m = repro.Machine(n_procs=2)
        d = m.generate(999, seed=5)
        assert repro.quantiles(d, [0.5])[0].value == repro.median(d).value

    def test_forwards_kwargs(self):
        m = repro.Machine(n_procs=2)
        d = m.generate(5000, seed=1)
        reps = repro.quantiles(d, [0.5], algorithm="bucket_based")
        assert reps[0].algorithm == "bucket_based"

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_rejects_out_of_range(self, bad):
        m = repro.Machine(n_procs=2)
        d = m.generate(100, seed=0)
        with pytest.raises(ConfigurationError):
            repro.quantiles(d, [bad])

    def test_empty_list(self):
        m = repro.Machine(n_procs=2)
        d = m.generate(100, seed=0)
        assert repro.quantiles(d, []) == []

    def test_tiny_quantile_maps_to_rank_one(self):
        m = repro.Machine(n_procs=2)
        d = m.generate(1000, seed=3)
        rep = repro.quantiles(d, [1e-9])[0]
        assert rep.k == 1
        assert rep.value == np.sort(d.gather())[0]
