"""Weighted median kernel (bucket-based algorithm's pivot rule)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.kernels.select import median_rank
from repro.kernels.weighted_median import weighted_median, weighted_median_cost
from repro.machine.cost_model import CM5


class TestBasics:
    def test_equal_weights_match_paper_median(self):
        # With unit weights the weighted median must equal the element of
        # rank ceil(p/2) — the paper's median definition.
        for n in range(1, 12):
            vals = np.arange(n, dtype=float)
            w = np.ones(n)
            assert weighted_median(vals, w) == vals[median_rank(n) - 1]

    def test_weight_dominance(self):
        vals = np.array([1.0, 2.0, 3.0])
        w = np.array([1.0, 1.0, 100.0])
        assert weighted_median(vals, w) == 3.0

    def test_zero_weights_ignored(self):
        vals = np.array([0.0, 5.0, 10.0])
        w = np.array([0.0, 1.0, 0.0])
        assert weighted_median(vals, w) == 5.0

    def test_unsorted_input(self):
        vals = np.array([9.0, 1.0, 5.0])
        w = np.array([1.0, 1.0, 1.0])
        assert weighted_median(vals, w) == 5.0

    def test_duplicate_values(self):
        vals = np.array([2.0, 2.0, 8.0])
        w = np.array([1.0, 1.0, 1.0])
        assert weighted_median(vals, w) == 2.0

    def test_definition_cumulative_weight(self):
        # Smallest value whose cumulative weight >= W/2.
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        w = np.array([1.0, 1.0, 1.0, 5.0])  # W = 8, W/2 = 4
        assert weighted_median(vals, w) == 4.0


class TestValidation:
    def test_all_zero_weights(self):
        with pytest.raises(ConfigurationError):
            weighted_median(np.array([1.0]), np.array([0.0]))

    def test_negative_weights(self):
        with pytest.raises(ConfigurationError):
            weighted_median(np.array([1.0, 2.0]), np.array([1.0, -1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            weighted_median(np.array([1.0, 2.0]), np.array([1.0]))


class TestCost:
    def test_positive_and_growing(self):
        assert weighted_median_cost(CM5, 4) > 0
        assert weighted_median_cost(CM5, 128) > weighted_median_cost(CM5, 4)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            st.integers(min_value=0, max_value=50),
        ),
        min_size=1,
        max_size=40,
    ).filter(lambda pairs: any(w > 0 for _, w in pairs))
)
def test_property_matches_expanded_median(pairs):
    """The weighted median equals the plain lower median of the multiset in
    which each value is repeated `weight` times."""
    vals = np.array([v for v, _ in pairs])
    wts = np.array([w for _, w in pairs], dtype=float)
    expanded = np.repeat(vals, [int(w) for w in wts])
    expect = np.sort(expanded)[median_rank(expanded.size) - 1]
    assert weighted_median(vals, wts) == expect
