"""Algorithmic-shape claims from the paper's analysis, tested structurally
(iteration counts and work evidence, not wall or simulated time)."""

import numpy as np

import repro
from repro.machine import zero_cost_model


def iterations(algo, n, p=4, dist="random", seed=0, **kw):
    m = repro.Machine(n_procs=p, cost_model=zero_cost_model())
    d = m.generate(n, distribution=dist, seed=seed)
    rep = repro.median(d, algorithm=algo, seed=seed, **kw)
    return rep.stats


class TestIterationGrowth:
    def test_randomized_grows_with_log_n(self):
        # Average over seeds: iteration count for n and n^2 should roughly
        # double (O(log n)).
        def avg_iters(n):
            return np.mean([
                iterations("randomized", n, seed=s).n_iterations
                for s in range(6)
            ])

        small = avg_iters(1 << 10)
        large = avg_iters(1 << 20)
        assert 1.4 < large / small < 3.5

    def test_fast_randomized_grows_much_slower(self):
        def avg_iters(n):
            return np.mean([
                iterations("fast_randomized", n, seed=s).n_iterations
                for s in range(4)
            ])

        # n grows 64x; O(log log n) iterations should grow by <= ~2 absolute.
        small = avg_iters(1 << 14)
        large = avg_iters(1 << 20)
        assert large - small <= 3.0

    def test_fast_randomized_fewer_iterations_than_randomized(self):
        n = 1 << 19
        fast = np.mean([
            iterations("fast_randomized", n, seed=s).n_iterations
            for s in range(4)
        ])
        rand = np.mean([
            iterations("randomized", n, seed=s).n_iterations
            for s in range(4)
        ])
        assert fast < rand / 2  # O(log log n) vs O(log n)


class TestGuaranteedShrink:
    def test_mom_discards_guaranteed_fraction(self):
        # With balanced loads the median of medians guarantees >= ~1/4 of
        # the keys discarded per iteration (we allow 0.80 for rounding).
        stats = iterations("median_of_medians", 1 << 17,
                           balancer="global_exchange")
        for it in stats.iterations:
            if it.n_after:
                assert it.shrink <= 0.80

    def test_bucket_weighted_median_shrinks_under_imbalance(self):
        # The weighted median keeps the guarantee *without* balancing, even
        # on skewed shard sizes (that is its whole point).
        m = repro.Machine(n_procs=4, cost_model=zero_cost_model())
        d = m.generate(1 << 16, distribution="skewed_shards", seed=1)
        rep = repro.median(d, algorithm="bucket_based")
        for it in rep.stats.iterations:
            if it.n_after:
                assert it.shrink <= 0.80

    def test_unweighted_median_has_no_guarantee_note(self):
        # Documentation-by-test: Algorithm 1 *requires* balancing; without
        # it, iterations still converge (3-way split always discards
        # something) but the per-iteration guarantee can be violated.
        m = repro.Machine(n_procs=4, cost_model=zero_cost_model())
        d = m.generate(1 << 14, distribution="skewed_shards", seed=3)
        rep = repro.median(d, algorithm="median_of_medians", balancer="none")
        assert rep.value == np.sort(d.gather())[(d.n + 1) // 2 - 1]


class TestBucketEconomics:
    def test_bucket_scans_less_than_full_rescans(self):
        # The bucket structure's raison d'etre: per-iteration touched
        # elements (local median + split) are a fraction of the live set.
        m = repro.Machine(n_procs=32)
        n = 1 << 18
        d = m.generate(n, distribution="random", seed=2)
        bucket = repro.median(d, algorithm="bucket_based")
        mom = repro.median(d, algorithm="median_of_medians",
                           balancer="global_exchange")
        # Same pivot-quality class => similar iteration counts, but the
        # bucket variant's compute is well below MoM's.
        assert bucket.breakdown.computation < 0.7 * mom.breakdown.computation

    def test_fast_randomized_unsuccessful_iterations_are_rare(self):
        rates = []
        for s in range(5):
            stats = iterations("fast_randomized", 1 << 18, seed=s)
            rates.append(
                stats.unsuccessful_iterations / max(stats.n_iterations, 1)
            )
        assert np.mean(rates) < 0.5  # the +-sqrt(|S| log n) bracket works


class TestEndgame:
    def test_endgame_size_at_most_threshold(self):
        for algo in ["randomized", "median_of_medians", "bucket_based"]:
            stats = iterations(algo, 1 << 15, p=4)
            if not stats.found_by_pivot:
                assert stats.endgame_n <= 16  # p^2

    def test_fast_randomized_endgame_floor(self):
        stats = iterations("fast_randomized", 1 << 16, p=4)
        if not stats.found_by_pivot:
            assert stats.endgame_n <= 2048  # Algorithm 4's constant C
