"""Single-pass multi-rank selection: repro.multi_select + the batched
quantiles() path + the kernels underneath (multiway partition, bucket
forking, batched rank lookup, sequential multi-selection)."""

import math

import numpy as np
import pytest

import repro
from repro.errors import ConfigurationError
from repro.selection import ALGORITHMS

ALGOS = sorted(ALGORITHMS)
N = 3000


def oracle(darr, ks):
    ref = np.sort(darr.gather())
    return [ref[k - 1] for k in ks]


# ---------------------------------------------------------------- API grid

@pytest.mark.parametrize("algo", ALGOS)
class TestCorrectnessGrid:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_spread_ranks_everywhere(self, algo, p):
        m = repro.Machine(n_procs=p)
        d = m.generate(N, distribution="random", seed=17)
        ks = [1, N // 4, N // 2, 3 * N // 4, N]
        rep = repro.multi_select(d, ks, algorithm=algo, seed=5)
        assert rep.values == oracle(d, ks)

    @pytest.mark.parametrize("dist", [
        "sorted", "reverse_sorted", "gaussian", "zipf", "few_distinct",
        "all_equal", "organ_pipe", "skewed_shards",
    ])
    def test_stress_distributions(self, algo, dist):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, distribution=dist, seed=3)
        ks = [7, N // 3, N // 3 + 1, N - 7]
        rep = repro.multi_select(d, ks, algorithm=algo, seed=1)
        assert rep.values == oracle(d, ks)

    def test_duplicate_and_unsorted_ranks(self, algo):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, distribution="random", seed=23)
        ks = [N // 2, 9, N // 2, N - 1, 9]
        rep = repro.multi_select(d, ks, algorithm=algo, seed=2)
        assert rep.values == oracle(d, ks)
        assert rep.ks == ks  # input order and duplicates preserved

    def test_adjacent_ranks(self, algo):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, distribution="random", seed=29)
        mid = N // 2
        ks = [mid - 1, mid, mid + 1]
        rep = repro.multi_select(d, ks, algorithm=algo, seed=3)
        assert rep.values == oracle(d, ks)

    def test_extreme_ranks_first_and_last(self, algo):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, distribution="random", seed=31)
        rep = repro.multi_select(d, [1, N], algorithm=algo, seed=4)
        assert rep.values == oracle(d, [1, N])

    def test_empty_shards(self, algo):
        m = repro.Machine(n_procs=4)
        rng = np.random.default_rng(7)
        shards = [rng.random(500), np.array([]), rng.random(300), np.array([])]
        d = m.from_shards(shards)
        ks = [1, 200, 400, 800]
        rep = repro.multi_select(d, ks, algorithm=algo, seed=5)
        assert rep.values == oracle(d, ks)

    def test_single_rank_matches_select(self, algo):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, distribution="random", seed=11)
        k = N // 3
        multi = repro.multi_select(d, [k], algorithm=algo, seed=6)
        single = repro.select(d, k, algorithm=algo, seed=6)
        assert multi.values[0] == single.value

    def test_many_dense_ranks(self, algo):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, distribution="random", seed=37)
        ks = list(range(100, N, 200))
        rep = repro.multi_select(d, ks, algorithm=algo, seed=7)
        assert rep.values == oracle(d, ks)

    @pytest.mark.parametrize("balancer", [
        "none", "modified_omlb", "global_exchange",
    ])
    def test_balancer_pairings(self, algo, balancer):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, distribution="sorted", seed=9)
        ks = [N // 4, N // 2, 3 * N // 4]
        rep = repro.multi_select(d, ks, algorithm=algo, balancer=balancer,
                                 seed=8)
        assert rep.values == oracle(d, ks)

    def test_input_shards_not_mutated(self, algo):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, distribution="random", seed=41)
        before = [s.copy() for s in d.shards]
        repro.multi_select(d, [1, N // 2, N], algorithm=algo)
        for a, b in zip(before, d.shards):
            assert np.array_equal(a, b)

    def test_report_fields(self, algo):
        m = repro.Machine(n_procs=4)
        d = m.generate(N, seed=2)
        ks = [N // 4, N // 2]
        rep = repro.multi_select(d, ks, algorithm=algo)
        assert rep.algorithm == algo
        assert rep.n == N and rep.p == 4
        assert rep.ks == ks and len(rep) == 2
        assert rep.simulated_time > 0
        assert rep.wall_time > 0
        assert rep.breakdown.total == pytest.approx(rep.simulated_time)
        assert rep.stats.ks == ks


class TestValidation:
    def test_empty_ks_returns_empty_report(self):
        m = repro.Machine(n_procs=2)
        d = m.generate(100, seed=0)
        rep = repro.multi_select(d, [])
        assert rep.values == [] and rep.ks == []
        assert rep.simulated_time == 0.0

    @pytest.mark.parametrize("bad", [0, -1, N + 1])
    def test_rejects_out_of_range(self, bad):
        m = repro.Machine(n_procs=2)
        d = m.generate(N, seed=0)
        with pytest.raises(ConfigurationError):
            repro.multi_select(d, [1, bad])

    def test_unknown_algorithm(self):
        m = repro.Machine(n_procs=2)
        d = m.generate(100, seed=0)
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            repro.multi_select(d, [1], algorithm="quantum")


class TestSingleProcessorFastPath:
    def test_values_and_stats(self):
        m = repro.Machine(n_procs=1)
        d = m.generate(N, distribution="random", seed=13)
        ks = [1, N // 2, N]
        rep = repro.multi_select(d, ks, seed=1)
        assert rep.values == oracle(d, ks)
        # p=1 skips the contraction entirely: one sequential multi-pass.
        assert rep.stats.n_iterations == 0
        assert rep.stats.endgame_intervals == 1
        assert rep.stats.endgame_n == N
        assert rep.simulated_time > 0

    def test_duplicate_heavy(self):
        m = repro.Machine(n_procs=1)
        d = m.generate(N, distribution="all_equal", seed=0)
        rep = repro.multi_select(d, [1, N // 2, N])
        assert rep.values == [42, 42, 42]


class TestEngineEvidence:
    def test_intervals_fork_for_spread_targets(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(50_000, distribution="random", seed=1)
        ks = [5_000, 25_000, 45_000]
        rep = repro.multi_select(d, ks, algorithm="randomized", seed=1)
        assert rep.stats.n_intervals >= 2
        assert rep.stats.endgame_intervals >= 1
        assert rep.stats.endgame_n > 0

    def test_pivot_resolution_on_duplicates(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(4096, distribution="all_equal", seed=0)
        rep = repro.multi_select(d, [1, 2048, 4096],
                                 algorithm="randomized")
        assert rep.values == [42, 42, 42]
        # One pivot hit resolves every target sitting in its == band.
        assert rep.stats.found_by_pivot == 3
        assert rep.stats.n_iterations <= 3

    def test_batched_cheaper_than_repeated(self):
        m = repro.Machine(n_procs=8)
        d = m.generate(200_000, distribution="random", seed=3)
        ks = [max(1, (i * d.n) // 10) for i in range(1, 10)]
        for algo in ["fast_randomized", "randomized", "bucket_based"]:
            batched = repro.multi_select(d, ks, algorithm=algo, seed=5)
            repeated = sum(
                repro.select(d, k, algorithm=algo, seed=5).simulated_time
                for k in ks
            )
            assert batched.simulated_time < repeated, algo

    def test_determinism(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(20_000, seed=1)
        ks = [5, 10_000, 19_995]
        a = repro.multi_select(d, ks, seed=99)
        b = repro.multi_select(d, ks, seed=99)
        assert a.values == b.values
        assert a.simulated_time == b.simulated_time
        assert a.stats.n_iterations == b.stats.n_iterations

    def test_value_independent_of_seed_and_algorithm(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(10_000, seed=1)
        ks = [1, 3_333, 6_666, 10_000]
        expect = oracle(d, ks)
        for algo in ("fast_randomized", "randomized", "sort_based"):
            for seed in range(3):
                assert repro.multi_select(
                    d, ks, algorithm=algo, seed=seed
                ).values == expect


class TestQuantilesBatched:
    def test_matches_per_quantile_select(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(10_000, distribution="gaussian", seed=2)
        qs = [0.01, 0.25, 0.5, 0.9, 0.999, 1.0]
        reports = repro.quantiles(d, qs)
        for q, rep in zip(qs, reports):
            k = max(1, math.ceil(q * d.n))
            assert rep.k == k
            assert rep.value == repro.select(d, k).value

    def test_single_launch_shared_metrics(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(50_000, seed=4)
        reports = repro.quantiles(d, [0.1, 0.5, 0.9])
        # One SPMD launch answered everything: the reports share it.
        assert len({r.simulated_time for r in reports}) == 1
        assert len({id(r.result) for r in reports}) == 1
        repeated = sum(
            repro.select(d, r.k).simulated_time for r in reports
        )
        assert reports[0].simulated_time < repeated


# ----------------------------------------------------------------- kernels

class TestPartitionMultiway:
    def test_matches_partition3_for_one_cut(self):
        from repro.kernels.partition import partition3, partition_multiway

        rng = np.random.default_rng(0)
        arr = rng.integers(0, 50, size=500)
        pivot = 25
        segs = partition_multiway(arr, [pivot])
        p3 = partition3(arr, pivot)
        assert sorted(segs[0]) == sorted(p3.lt)
        assert sorted(segs[1]) == sorted(p3.eq)
        assert sorted(segs[2]) == sorted(p3.gt)

    def test_segments_ordered_and_exhaustive(self):
        from repro.kernels.partition import partition_multiway

        rng = np.random.default_rng(1)
        arr = rng.integers(0, 100, size=2000)
        cuts = [10, 40, 41, 90]
        segs = partition_multiway(arr, cuts)
        assert len(segs) == 2 * len(cuts) + 1
        assert sum(s.size for s in segs) == arr.size
        rebuilt = np.concatenate([np.sort(s) for s in segs])
        assert np.array_equal(rebuilt, np.sort(arr))
        for j, c in enumerate(cuts):
            assert np.all(segs[2 * j + 1] == c)

    def test_rejects_unsorted_or_duplicate_cuts(self):
        from repro.kernels.partition import partition_multiway

        with pytest.raises(ConfigurationError):
            partition_multiway(np.arange(10), [5, 3])
        with pytest.raises(ConfigurationError):
            partition_multiway(np.arange(10), [3, 3])
        with pytest.raises(ConfigurationError):
            partition_multiway(np.arange(10), [])

    def test_cost_grows_with_cut_count(self):
        from repro.kernels.partition import partition_multiway_cost
        from repro.machine.cost_model import CM5

        one = partition_multiway_cost(CM5, 1000, 1)
        many = partition_multiway_cost(CM5, 1000, 15)
        assert many > one
        # q=1 charges exactly one plain partition pass.
        assert one == CM5.compute.partition * 1000


class TestBucketSplit:
    def test_split3_vs_preserves_sides(self):
        from repro.kernels.buckets import LocalBuckets

        rng = np.random.default_rng(3)
        arr = rng.integers(0, 100, size=1000)
        b = LocalBuckets.build(arr, 8)
        low, high, scan = b.split3_vs(50)
        assert sorted(low.as_array()) == sorted(arr[arr < 50])
        assert sorted(high.as_array()) == sorted(arr[arr > 50])
        low.check_invariants()
        high.check_invariants()
        assert scan.touched <= arr.size
        # The parent structure is untouched (non-destructive).
        assert b.total == arr.size

    def test_split_on_all_equal(self):
        from repro.kernels.buckets import LocalBuckets

        b = LocalBuckets.build(np.full(64, 7), 4)
        low, high, _scan = b.split3_vs(7)
        assert low.total == 0 and high.total == 0


class TestSelectMultiKth:
    @pytest.mark.parametrize("method", ["introselect", "randomized",
                                        "deterministic"])
    def test_matches_sorted(self, method):
        from repro.kernels.select import select_multi_kth

        rng = np.random.default_rng(4)
        arr = rng.random(500)
        ks = [1, 100, 250, 251, 500]
        ref = np.sort(arr)
        got = select_multi_kth(arr, ks, method=method,
                               rng=np.random.default_rng(0))
        assert got == [ref[k - 1] for k in ks]

    def test_rejects_unsorted_ranks(self):
        from repro.kernels.select import select_multi_kth

        with pytest.raises(ConfigurationError):
            select_multi_kth(np.arange(10), [5, 3])

    def test_cost_sublinear_in_q(self):
        from repro.kernels.select import multi_select_cost, select_cost
        from repro.machine.cost_model import CM5

        single = select_cost(CM5, 1000, "randomized")
        assert multi_select_cost(CM5, 1000, 1, "randomized") == single
        q = 9
        assert multi_select_cost(CM5, 1000, q, "randomized") < q * single


class TestBatchedRankLookup:
    def test_elements_at_global_ranks(self):
        from repro.kernels.costed import CostedKernels
        from repro.machine import run_spmd
        from repro.psort.sample_sort import (
            elements_at_global_ranks,
            sample_sort,
        )

        rng = np.random.default_rng(5)
        data = rng.random(4000)
        shards = np.array_split(data, 4)
        ref = np.sort(data)
        ks = [1, 17, 2000, 3999, 4000]

        def prog(ctx, shard):
            run = sample_sort(ctx, CostedKernels(ctx), shard)
            return elements_at_global_ranks(ctx, run, ks)

        res = run_spmd(prog, 4, rank_args=[(s,) for s in shards])
        for values in res.values:
            assert values == [ref[k - 1] for k in ks]
