"""Partition kernels vs brute-force references + properties."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kernels.partition import (
    count3,
    partition2,
    partition3,
    partition_band,
    partition_cost,
)
from repro.machine.cost_model import CM5

floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


class TestPartition2:
    def test_basic_split(self):
        arr = np.array([5, 1, 9, 3, 7])
        r = partition2(arr, 5)
        assert sorted(r.le.tolist()) == [1, 3, 5]
        assert sorted(r.gt.tolist()) == [7, 9]
        assert r.n_le == 3 and r.n_gt == 2

    def test_all_le(self):
        r = partition2(np.array([1, 2, 3]), 10)
        assert r.n_le == 3 and r.n_gt == 0

    def test_empty(self):
        r = partition2(np.array([]), 0)
        assert r.n_le == 0 and r.n_gt == 0

    def test_duplicates_go_le(self):
        r = partition2(np.array([4, 4, 4]), 4)
        assert r.n_le == 3


class TestPartition3:
    def test_three_way(self):
        arr = np.array([2, 5, 5, 8, 1])
        r = partition3(arr, 5)
        assert sorted(r.lt.tolist()) == [1, 2]
        assert r.eq.tolist() == [5, 5]
        assert r.gt.tolist() == [8]

    def test_counts_match_split(self):
        rng = np.random.default_rng(0)
        arr = rng.integers(0, 20, 500)
        pivot = 10
        r = partition3(arr, pivot)
        assert count3(arr, pivot) == (r.n_lt, r.n_eq, r.n_gt)

    def test_preserves_multiset(self):
        rng = np.random.default_rng(1)
        arr = rng.integers(0, 9, 200)
        r = partition3(arr, 4)
        rebuilt = np.sort(np.concatenate([r.lt, r.eq, r.gt]))
        assert np.array_equal(rebuilt, np.sort(arr))


class TestPartitionBand:
    def test_band_split(self):
        arr = np.array([1, 3, 5, 7, 9, 5])
        less, mid, high = partition_band(arr, 3, 7)
        assert less.tolist() == [1]
        assert sorted(mid.tolist()) == [3, 5, 5, 7]
        assert high.tolist() == [9]

    def test_band_collapsed(self):
        arr = np.array([1, 2, 2, 3])
        less, mid, high = partition_band(arr, 2, 2)
        assert less.tolist() == [1]
        assert mid.tolist() == [2, 2]
        assert high.tolist() == [3]


class TestCost:
    def test_linear(self):
        assert partition_cost(CM5, 1000) == pytest.approx(
            1000 * CM5.compute.partition
        )

    def test_negative_clamped(self):
        assert partition_cost(CM5, -5) == 0.0


@given(arrays(np.float64, st.integers(0, 200), elements=floats), floats)
def test_property_partition3_classifies_every_element(arr, pivot):
    r = partition3(arr, pivot)
    assert r.n_lt + r.n_eq + r.n_gt == arr.size
    assert np.all(r.lt < pivot) and np.all(r.gt > pivot)
    assert np.all(r.eq == pivot)


@given(arrays(np.int64, st.integers(1, 100),
              elements=st.integers(-50, 50)),
       st.integers(-50, 50), st.integers(-50, 50))
def test_property_band_is_exhaustive(arr, a, b):
    lo, hi = min(a, b), max(a, b)
    less, mid, high = partition_band(arr, lo, hi)
    assert less.size + mid.size + high.size == arr.size
    assert np.all(less < lo) and np.all(high > hi)
    assert np.all((mid >= lo) & (mid <= hi))
