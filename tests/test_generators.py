"""Workload generators: sizes, determinism, and shape guarantees."""

import numpy as np
import pytest

from repro.data.generators import (
    DISTRIBUTIONS,
    describe,
    generate_shards,
    shard_sizes,
)
from repro.errors import ConfigurationError


class TestShardSizes:
    @pytest.mark.parametrize("n,p", [(10, 3), (7, 7), (0, 4), (100, 1), (5, 8)])
    def test_sums_and_balance(self, n, p):
        sizes = shard_sizes(n, p)
        assert sum(sizes) == n
        assert len(sizes) == p
        assert max(sizes) - min(sizes) <= 1

    def test_remainder_goes_to_low_ranks(self):
        assert shard_sizes(10, 4) == [3, 3, 2, 2]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            shard_sizes(-1, 2)
        with pytest.raises(ConfigurationError):
            shard_sizes(4, 0)


@pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
class TestEveryDistribution:
    def test_total_count(self, dist):
        shards = generate_shards(1000, 7, dist, seed=1)
        assert sum(s.size for s in shards) == 1000
        assert len(shards) == 7

    def test_deterministic_under_seed(self, dist):
        a = generate_shards(500, 4, dist, seed=42)
        b = generate_shards(500, 4, dist, seed=42)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_one_processor(self, dist):
        shards = generate_shards(100, 1, dist, seed=0)
        assert len(shards) == 1 and shards[0].size == 100

    def test_describe_has_text(self, dist):
        assert len(describe(dist)) > 5


class TestSpecificShapes:
    def test_sorted_is_paper_layout(self):
        # P_i holds i*n/p .. (i+1)*n/p - 1 — globally sorted blocks.
        shards = generate_shards(100, 4, "sorted")
        flat = np.concatenate(shards)
        assert np.array_equal(flat, np.arange(100))

    def test_random_seeds_differ(self):
        a = generate_shards(100, 2, "random", seed=1)
        b = generate_shards(100, 2, "random", seed=2)
        assert not np.array_equal(a[0], b[0])

    def test_all_equal(self):
        shards = generate_shards(50, 3, "all_equal")
        assert all(np.all(s == 42) for s in shards)

    def test_few_distinct_range(self):
        shards = generate_shards(400, 2, "few_distinct", seed=0)
        values = np.unique(np.concatenate(shards))
        assert values.size <= 8

    def test_reverse_sorted_is_decreasing(self):
        shards = generate_shards(64, 4, "reverse_sorted")
        flat = np.concatenate(shards)
        assert np.all(np.diff(flat) <= 0)
        assert np.array_equal(np.sort(flat), np.arange(64))

    def test_organ_pipe_multiset(self):
        shards = generate_shards(100, 4, "organ_pipe")
        flat = np.concatenate(shards)
        assert flat.size == 100
        assert flat.max() == 49

    def test_skewed_shards_are_skewed(self):
        shards = generate_shards(1000, 8, "skewed_shards", seed=3)
        sizes = [s.size for s in shards]
        assert max(sizes) >= 1000 // 2  # rank 0 hoards half

    def test_zipf_heavy_head(self):
        shards = generate_shards(2000, 2, "zipf", seed=0)
        flat = np.concatenate(shards)
        assert np.sum(flat == 1) > 2000 * 0.3  # zipf(1.5): ~38% mass at 1

    def test_unknown_distribution(self):
        with pytest.raises(ConfigurationError, match="unknown distribution"):
            generate_shards(10, 2, "nope")


class TestTopLevelReExport:
    """The workload registry is public API: examples and benchmarks import
    it from ``repro``, not from the ``repro.data.generators`` module."""

    def test_registry_reexported(self):
        import repro

        assert repro.DISTRIBUTIONS is DISTRIBUTIONS
        assert repro.generate_shards is generate_shards
        assert repro.describe is describe
        for name in ("DISTRIBUTIONS", "generate_shards", "describe"):
            assert name in repro.__all__
