"""Sequential selection kernels: three implementations vs a sorting oracle."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigurationError
from repro.kernels.select import (
    local_median,
    median_rank,
    select_cost,
    select_deterministic,
    select_introselect,
    select_kth,
    select_randomized,
)
from repro.machine.cost_model import CM5

METHODS = ["deterministic", "randomized", "introselect"]


def oracle(arr, k):
    return np.sort(arr)[k - 1]


@pytest.fixture(params=METHODS)
def method(request):
    return request.param


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(5))
    def test_uniform_random(self, method, seed):
        rng = np.random.default_rng(seed)
        arr = rng.random(257)
        for k in [1, 2, 64, 129, 256, 257]:
            assert select_kth(arr, k, method) == oracle(arr, k)

    def test_integers_with_duplicates(self, method):
        rng = np.random.default_rng(7)
        arr = rng.integers(0, 10, 500)
        for k in [1, 250, 500]:
            assert select_kth(arr, k, method) == oracle(arr, k)

    def test_all_equal(self, method):
        arr = np.full(100, 3.5)
        assert select_kth(arr, 50, method) == 3.5

    def test_sorted_input(self, method):
        arr = np.arange(1000)
        assert select_kth(arr, 400, method) == 399

    def test_reverse_sorted(self, method):
        arr = np.arange(1000)[::-1].copy()
        assert select_kth(arr, 400, method) == 399

    def test_single_element(self, method):
        assert select_kth(np.array([42.0]), 1, method) == 42.0

    def test_two_elements(self, method):
        arr = np.array([9, 4])
        assert select_kth(arr, 1, method) == 4
        assert select_kth(arr, 2, method) == 9

    def test_negative_values(self, method):
        arr = np.array([-5.0, 3.0, -1.0, 0.0, 2.0])
        assert select_kth(arr, 2, method) == -1.0

    def test_large_array_median(self, method):
        rng = np.random.default_rng(3)
        arr = rng.normal(size=50_001)
        k = median_rank(arr.size)
        assert select_kth(arr, k, method) == np.median(arr)


class TestValidation:
    def test_empty_raises(self, method):
        with pytest.raises(ConfigurationError):
            select_kth(np.array([]), 1, method)

    @pytest.mark.parametrize("k", [0, -1, 6])
    def test_rank_out_of_range(self, method, k):
        with pytest.raises(ConfigurationError):
            select_kth(np.arange(5), k, method)

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            select_kth(np.arange(5), 1, "bogus")

    def test_unknown_cost_method(self):
        with pytest.raises(ConfigurationError):
            select_cost(CM5, 10, "bogus")


class TestMedianRank:
    @pytest.mark.parametrize("n,expect", [(1, 1), (2, 1), (3, 2), (4, 2),
                                          (5, 3), (100, 50), (101, 51)])
    def test_paper_definition(self, n, expect):
        # Paper: median = element of rank ceil(N/2).
        assert median_rank(n) == expect

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            median_rank(0)

    def test_local_median(self, method):
        arr = np.array([5, 1, 3])
        assert local_median(arr, method) == 3


class TestImplementations:
    def test_randomized_respects_rng(self):
        arr = np.random.default_rng(0).random(1000)
        r1 = select_randomized(arr, 500, np.random.default_rng(1))
        r2 = select_randomized(arr, 500, np.random.default_rng(2))
        assert r1 == r2 == oracle(arr, 500)  # value independent of stream

    def test_deterministic_handles_tiny_groups(self):
        # Sizes around the groups-of-5 boundary and the sort cutoff.
        for n in [1, 4, 5, 6, 31, 32, 33, 34, 35, 36, 159, 161]:
            arr = np.random.default_rng(n).permutation(n).astype(float)
            for k in {1, (n + 1) // 2, n}:
                assert select_deterministic(arr, k) == float(k - 1)

    def test_introselect_matches(self):
        arr = np.random.default_rng(9).integers(0, 1000, 777)
        assert select_introselect(arr, 123) == oracle(arr, 123)


class TestCosts:
    def test_deterministic_costs_more(self):
        det = select_cost(CM5, 1000, "deterministic")
        rnd = select_cost(CM5, 1000, "randomized")
        assert det > 5 * rnd

    def test_cost_linear(self):
        assert select_cost(CM5, 2000, "randomized") == pytest.approx(
            2 * select_cost(CM5, 1000, "randomized")
        )

    def test_introselect_charged_as_randomized_class(self):
        assert select_cost(CM5, 100, "introselect") == pytest.approx(
            select_cost(CM5, 100, "randomized")
        )


@given(
    arrays(np.int64, st.integers(1, 300), elements=st.integers(-1000, 1000)),
    st.data(),
)
def test_property_all_methods_agree_with_oracle(arr, data):
    k = data.draw(st.integers(1, arr.size))
    expect = oracle(arr, k)
    rng = np.random.default_rng(0)
    assert select_introselect(arr, k) == expect
    assert select_randomized(arr, k, rng) == expect
    assert select_deterministic(arr, k) == expect


@given(arrays(np.float64, st.integers(1, 200),
              elements=st.floats(allow_nan=False, allow_infinity=False,
                                 width=32)))
def test_property_median_is_true_median(arr):
    k = median_rank(arr.size)
    assert select_deterministic(arr, k) == np.sort(arr)[k - 1]
