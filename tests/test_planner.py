"""The query planner: candidate space, pricing, auto bit-identity,
self-calibration, and the degenerate shapes that must never crash it.

The planner's contract has four legs, each pinned here:

* the candidate space is exactly (closed-form algorithm x prefilter
  availability), every candidate is a valid launchable plan, and the
  ranking is deterministic;
* ``algorithm="auto"`` is bit-identical (value AND simulated time) to
  running the planner's chosen plan explicitly;
* the residual store monotonically shrinks the median relative error on
  a replayed trace, and its corrections/mispredictions are observable
  through the metrics registry;
* planning never crashes on n=1, n<p, all-equal keys, empty multi-select
  or streaming arrays.
"""

import numpy as np
import pytest

import repro
from repro import obs
from repro.core.plan import SelectionPlan
from repro.core.session import Session, predict_simulated
from repro.errors import ConfigurationError
from repro.machine.cost_model import CM5, cm5, cm5_two_level
from repro.obs.metrics import REGISTRY
from repro.planner import (
    CLOSED_FORM_ALGORITHMS,
    ResidualStore,
    calibrate_cost_model,
    choose_plan,
    enumerate_candidates,
    plan_query,
    resolve_auto,
    use_store,
)
from repro.planner.cli import main as planner_main
from repro.planner.cost import predict_on_topology, predict_prefilter

N = 20_000
P = 8


@pytest.fixture
def fresh_store():
    with use_store(ResidualStore()) as store:
        yield store


@pytest.fixture
def machine():
    return repro.Machine(n_procs=P)


# ---------------------------------------------------------------------------
# Plan surface: "auto" is a valid algorithm name that never launches raw
# ---------------------------------------------------------------------------


class TestAutoPlanSurface:
    def test_auto_is_accepted(self):
        plan = SelectionPlan(algorithm="auto")
        assert plan.algorithm == "auto"
        assert "auto" in plan.describe()

    def test_unknown_algorithm_message_lists_auto(self):
        with pytest.raises(ConfigurationError, match="auto"):
            SelectionPlan(algorithm="nope")

    def test_auto_resolve_raises_before_launch(self):
        with pytest.raises(ConfigurationError, match="planner"):
            SelectionPlan(algorithm="auto").resolve()

    def test_resolve_auto_rejects_concrete_plans(self, machine, fresh_store):
        data = machine.generate(100, seed=0)
        with pytest.raises(ConfigurationError, match="auto"):
            resolve_auto(data, SelectionPlan(algorithm="randomized"))


# ---------------------------------------------------------------------------
# Candidate space: enumeration and validation
# ---------------------------------------------------------------------------


class TestCandidateSpace:
    def test_plain_space_is_the_closed_form_algorithms(self, fresh_store):
        cands = enumerate_candidates(
            SelectionPlan(), N, P, "crossbar", CM5, fresh_store
        )
        assert sorted(c.plan.algorithm for c in cands) == sorted(
            CLOSED_FORM_ALGORITHMS
        )
        assert all(c.plan.prefilter is None for c in cands)

    def test_sketches_double_the_space(self, fresh_store):
        cands = enumerate_candidates(
            SelectionPlan(), N, P, "crossbar", CM5, fresh_store,
            sketches_available=True,
        )
        assert len(cands) == 2 * len(CLOSED_FORM_ALGORITHMS)
        assert {c.plan.prefilter for c in cands} == {None, "sketch"}

    def test_degenerate_hint_suppresses_prefilter(self, fresh_store):
        cands = enumerate_candidates(
            SelectionPlan(), N, P, "crossbar", CM5, fresh_store,
            sketches_available=True, hint="degenerate",
        )
        assert all(c.plan.prefilter is None for c in cands)

    def test_explicit_prefilter_is_respected(self, fresh_store):
        base = SelectionPlan(prefilter="sketch", sketch_eps=0.02)
        cands = enumerate_candidates(
            base, N, P, "crossbar", CM5, fresh_store
        )
        assert all(c.plan.prefilter == "sketch" for c in cands)
        assert all(c.plan.sketch_eps == 0.02 for c in cands)

    def test_candidates_carry_base_knobs_and_are_launchable(
        self, fresh_store
    ):
        base = SelectionPlan(seed=17, kernels="fast", backend="serial")
        cands = enumerate_candidates(
            base, N, P, "crossbar", CM5, fresh_store
        )
        for cand in cands:
            assert cand.plan.seed == 17
            assert cand.plan.kernels == "fast"
            assert cand.plan.backend == "serial"
            cand.plan.resolve()  # every candidate must be launchable
            assert cand.predicted > 0
            assert cand.corrected == cand.predicted  # empty store

    def test_ranking_is_sorted_and_deterministic(self, fresh_store):
        a = enumerate_candidates(
            SelectionPlan(), N, P, "crossbar", CM5, fresh_store
        )
        b = enumerate_candidates(
            SelectionPlan(), N, P, "crossbar", CM5, fresh_store
        )
        assert [c.plan.algorithm for c in a] == [
            c.plan.algorithm for c in b
        ]
        assert list(c.corrected for c in a) == sorted(
            c.corrected for c in a
        )

    def test_decision_table_mentions_every_candidate(
        self, machine, fresh_store
    ):
        decision = plan_query(machine.generate(N, seed=0))
        text = decision.table()
        for cand in decision.candidates:
            assert cand.label() in text
        assert decision.chosen.algorithm in text


# ---------------------------------------------------------------------------
# Schedule-based pricing beyond the crossbar
# ---------------------------------------------------------------------------


class TestTopologyPricing:
    def test_crossbar_matches_legacy_closed_forms(self):
        from repro.bench.model import predict

        for algorithm in CLOSED_FORM_ALGORITHMS:
            legacy = predict(algorithm, N, P, CM5).total
            via_topo = predict_on_topology(
                algorithm, N, P, CM5, "crossbar"
            ).total
            assert via_topo == legacy

    @pytest.mark.parametrize(
        "topology", ["binomial-tree", "hypercube", "two-level:4"]
    )
    def test_routed_topologies_price_positive(self, topology):
        model = cm5_two_level() if "two-level" in topology else cm5()
        for algorithm in CLOSED_FORM_ALGORITHMS:
            pred = predict_on_topology(algorithm, N, P, model, topology)
            assert pred.total > 0
            assert pred.comm > 0

    def test_no_closed_form_still_raises(self):
        with pytest.raises(ConfigurationError):
            predict_on_topology("sort_based", N, P, CM5, "hypercube")

    def test_prefilter_estimate_cheaper_on_large_n(self):
        # A 1M-key query: scanning once + contracting ~2*eps*n survivors
        # must price below contracting the full input.
        plain = predict_on_topology("randomized", 1 << 20, P, CM5)
        filtered = predict_prefilter("randomized", 1 << 20, P, CM5)
        assert filtered.total < plain.total

    def test_report_prediction_populates_on_routed_topologies(
        self, fresh_store
    ):
        machine = repro.Machine(n_procs=P, topology="hypercube")
        report = machine.generate(N, seed=1).select(7)
        assert report.predicted_time is not None and report.predicted_time > 0
        assert report.cost_residual is not None

    def test_predict_simulated_matches_plan_topology(self, fresh_store):
        plan = SelectionPlan(algorithm="randomized", topology="hypercube")
        via_session = predict_simulated(plan, N, P, CM5, plan.topology)
        direct = predict_on_topology("randomized", N, P, CM5, "hypercube")
        assert via_session == direct.total


# ---------------------------------------------------------------------------
# Auto bit-identity: the acceptance criterion
# ---------------------------------------------------------------------------


class TestAutoBitIdentity:
    @pytest.mark.parametrize("distribution", ["random", "sorted"])
    def test_select_bit_identical_to_chosen_plan(self, distribution):
        auto = SelectionPlan(algorithm="auto", seed=3)
        m1 = repro.Machine(n_procs=P)
        d1 = m1.generate(N, distribution=distribution, seed=5)
        with use_store(ResidualStore()):
            chosen = plan_query(d1, auto).chosen
            assert chosen.algorithm in CLOSED_FORM_ALGORITHMS
            got = Session(m1, cache=False).run_select(d1, N // 3, auto)
        m2 = repro.Machine(n_procs=P)
        d2 = m2.generate(N, distribution=distribution, seed=5)
        with use_store(ResidualStore()):
            want = Session(m2, cache=False).run_select(d2, N // 3, chosen)
        assert got.value == want.value
        assert got.simulated_time == want.simulated_time
        assert got.algorithm == want.algorithm == chosen.algorithm

    def test_multi_select_bit_identical(self, fresh_store, machine):
        data = machine.generate(N, seed=9)
        auto = SelectionPlan(algorithm="auto", seed=1)
        chosen = plan_query(data, auto).chosen
        session = Session(machine, cache=False)
        ks = [1, N // 2, N // 2, N]
        got = session.run_multi_select(data, ks, auto)
        want = session.run_multi_select(data, ks, chosen)
        assert got.values == want.values
        assert got.simulated_time == want.simulated_time

    def test_auto_report_names_the_resolved_algorithm(
        self, fresh_store, machine
    ):
        report = machine.generate(N, seed=2).select(5, algorithm="auto")
        assert report.algorithm in CLOSED_FORM_ALGORITHMS

    def test_streaming_array_auto_uses_sketches(self, fresh_store, machine):
        stream = machine.stream()
        rng = np.random.default_rng(0)
        for _ in range(4):
            stream.append(rng.normal(size=N // 4))
        decision = plan_query(stream, SelectionPlan(algorithm="auto"))
        assert any(
            c.plan.prefilter == "sketch" for c in decision.candidates
        ), "streaming arrays must offer sketch-prefiltered candidates"
        report = stream.select(N // 2, algorithm="auto")
        oracle = float(np.sort(stream.gather())[N // 2 - 1])
        assert report.value == oracle

    def test_service_default_plan_is_auto(self, machine):
        svc = repro.SelectionService(machine)
        assert svc._session.plan.algorithm == "auto"


# ---------------------------------------------------------------------------
# Self-calibration: the residual store
# ---------------------------------------------------------------------------


class TestResidualCalibration:
    def test_replayed_trace_monotonically_shrinks_error(self):
        """Replaying one launch's (predicted, actual) pair: the error is
        the raw modelling error on the first observation and collapses to
        ~0 for every later one — monotone non-increasing throughout."""
        store = ResidualStore()
        predicted, actual = 0.010, 0.017
        errs = [
            store.observe("randomized", "crossbar", P, predicted, actual)
            for _ in range(6)
        ]
        assert errs[0] == pytest.approx(abs(predicted - actual) / actual)
        assert all(b <= a + 1e-12 for a, b in zip(errs, errs[1:]))
        assert errs[-1] == pytest.approx(0.0, abs=1e-12)

    def test_varied_trace_shrinks_median_error(self, machine):
        """A replayed trace of real launches with varied seeds: the
        second pass through the same trace must see a smaller median
        relative error than the first (the acceptance criterion)."""
        data = machine.generate(N, seed=4)
        session = Session(machine, cache=False)
        reports = []
        with use_store(ResidualStore()):
            for t in range(4):
                plan = SelectionPlan(algorithm="randomized", seed=t)
                reports.append(session.run_select(data, N // 2, plan))
        trace = [
            (r.predicted_time, r.simulated_time) for r in reports
        ]
        store = ResidualStore()
        first = [
            store.observe("randomized", "crossbar", P, pred, act)
            for pred, act in trace
        ]
        second = [
            store.observe("randomized", "crossbar", P, pred, act)
            for pred, act in trace
        ]
        assert np.median(second) < np.median(first)

    def test_corrections_scale_choose_plan(self, fresh_store):
        uncorrected = choose_plan(N, P, CM5, store=fresh_store)
        fastest = uncorrected.candidates[0]
        # Teach the store that the predicted winner actually runs 100x
        # slower than its closed form claims; the ranking must flip.
        for _ in range(5):
            fresh_store.observe(
                fastest.plan.algorithm, "crossbar", P,
                fastest.predicted, fastest.predicted * 100.0,
            )
        corrected = choose_plan(N, P, CM5, store=fresh_store)
        assert (corrected.chosen.algorithm != fastest.plan.algorithm)

    def test_launches_feed_the_default_store(self, machine):
        with use_store(ResidualStore()) as store:
            machine.generate(N, seed=0).select(3, algorithm="randomized")
            snap = store.snapshot()
        assert ("randomized", "crossbar", 3) in snap
        count, correction = snap[("randomized", "crossbar", 3)]
        assert count == 1 and correction > 0

    def test_correction_gauge_and_mispredict_counter(self):
        REGISTRY.clear()
        store = ResidualStore()
        store.observe("randomized", "crossbar", P, 0.010, 0.011)
        gauges = [
            m for m in REGISTRY.find("repro.planner.correction")
        ]
        assert gauges and gauges[0].value == pytest.approx(1.1)
        assert not list(REGISTRY.find("repro.planner.mispredict"))
        # Second observation: corrected prediction is 0.011, actual is
        # 10x that -> relative error ~0.9 > threshold -> mispredict.
        store.observe("randomized", "crossbar", P, 0.010, 0.110)
        counters = list(REGISTRY.find("repro.planner.mispredict"))
        assert counters and counters[0].value == 1

    def test_planner_choose_span(self, machine):
        with use_store(ResidualStore()), obs.capture() as rec:
            machine.generate(N, seed=0).select(5, algorithm="auto")
        spans = [s for s in rec.spans if s.name == "planner.choose"]
        assert len(spans) == 1
        assert spans[0].attrs["candidates"] == len(CLOSED_FORM_ALGORITHMS)
        assert spans[0].attrs["winner"] in CLOSED_FORM_ALGORITHMS


# ---------------------------------------------------------------------------
# CostModel.calibrate: probe-fit constants
# ---------------------------------------------------------------------------


class TestCalibrate:
    def test_calibrate_fits_positive_constants(self):
        machine = repro.Machine(n_procs=4)
        fitted = calibrate_cost_model(
            machine, reps=2, sizes=(1, 4096), trials=1
        )
        assert fitted.tau > 0 and fitted.mu > 0
        assert fitted.name.endswith("-calibrated")
        # The machine's own model is untouched.
        assert machine.cost_model.name == CM5.name

    def test_method_front_door_preserves_hierarchy_ratios(self):
        machine = repro.Machine(n_procs=4)
        model = cm5_two_level()
        fitted = model.calibrate(
            machine, reps=2, sizes=(1, 4096), trials=1
        )
        assert fitted.tau_inter is not None
        assert fitted.tau_inter / fitted.tau == pytest.approx(
            model.tau_inter / model.tau
        )
        assert fitted.mu_inter / fitted.mu == pytest.approx(
            model.mu_inter / model.mu
        )

    def test_bad_arguments_rejected(self):
        machine = repro.Machine(n_procs=2)
        with pytest.raises(ConfigurationError):
            calibrate_cost_model(machine, reps=0)
        with pytest.raises(ConfigurationError):
            calibrate_cost_model(machine, sizes=(8,))


# ---------------------------------------------------------------------------
# Edge grid: planning must never crash on degenerate shapes
# ---------------------------------------------------------------------------


class TestAutoEdgeGrid:
    def test_single_element(self, fresh_store):
        machine = repro.Machine(n_procs=4)
        data = machine.distribute(np.array([7.25]))
        assert data.select(1, algorithm="auto").value == 7.25

    def test_fewer_keys_than_processors(self, fresh_store):
        machine = repro.Machine(n_procs=8)
        data = machine.distribute(np.array([5.0, 1.0, 3.0]))
        got = [data.select(k, algorithm="auto").value for k in (1, 2, 3)]
        assert got == [1.0, 3.0, 5.0]

    def test_all_equal_keys(self, fresh_store):
        machine = repro.Machine(n_procs=4)
        data = machine.distribute(np.full(500, 5.0))
        assert data.select(250, algorithm="auto").value == 5.0

    def test_all_equal_streaming_hint_degenerate(self, fresh_store):
        machine = repro.Machine(n_procs=4)
        stream = machine.stream()
        stream.append(np.full(400, 2.0))
        decision = plan_query(stream, SelectionPlan(algorithm="auto"))
        assert decision.hint == "degenerate"
        assert all(
            c.plan.prefilter is None for c in decision.candidates
        )
        assert stream.select(200, algorithm="auto").value == 2.0

    def test_empty_multi_select(self, fresh_store):
        machine = repro.Machine(n_procs=4)
        data = machine.generate(100, seed=0)
        assert data.multi_select(
            [], algorithm="auto"
        ).values == []

    def test_empty_array_fails_clean_without_launch(self, fresh_store):
        machine = repro.Machine(n_procs=4)
        data = machine.distribute(np.array([]))
        before = machine.launch_count
        with pytest.raises(ConfigurationError):
            data.select(1, algorithm="auto")
        assert machine.launch_count == before

    def test_choose_plan_n_zero_falls_back(self, fresh_store):
        decision = choose_plan(0, P, CM5, store=fresh_store)
        assert decision.candidates == ()
        assert decision.chosen.algorithm == "fast_randomized"


# ---------------------------------------------------------------------------
# The explain CLI
# ---------------------------------------------------------------------------


class TestExplainCli:
    def test_explain_prints_ranked_table(self, capsys):
        assert planner_main(
            ["explain", "--n", "100000", "--p", "8"]
        ) == 0
        out = capsys.readouterr().out
        for algorithm in CLOSED_FORM_ALGORITHMS:
            assert algorithm in out
        assert "winner:" in out and "<- chosen" in out

    def test_explain_sketch_and_topology(self, capsys):
        assert planner_main([
            "explain", "--n", "100000", "--p", "16",
            "--topology", "hypercube", "--sketch",
        ]) == 0
        out = capsys.readouterr().out
        assert "+sketch" in out and "hypercube" in out

    def test_explain_sorted_hint_uses_table2(self, capsys):
        planner_main(["explain", "--n", "100000", "--p", "8",
                      "--hint", "sorted"])
        assert "hint=sorted" in capsys.readouterr().out
