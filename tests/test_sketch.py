"""QuantileSketch: the guarantees the refinement pre-filter stands on.

The load-bearing property is *bracketing*: for every rank ``k``,
``rank_bounds(k)`` returns keys ``(lo, hi)`` with
``lo <= sorted(data)[k-1] <= hi`` — regardless of how the data was
batched, merged, or in which association order the merges happened. The
accuracy property bounds how many keys can hide strictly inside the
bracket (``O(eps * n)`` plus boundary duplicates), which is what makes the
pre-filter's survivor fraction small.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QuantileSketch
from repro.errors import ConfigurationError
from repro.stream.sketch import merge_all

batches = st.lists(
    st.lists(
        st.floats(-1e6, 1e6, allow_nan=False, width=64),
        min_size=0, max_size=60,
    ),
    min_size=1, max_size=5,
)


def assert_brackets(sketch, data, ks=None):
    s = np.sort(np.asarray(data))
    n = s.size
    assert sketch.count == n
    for k in ks if ks is not None else range(1, n + 1):
        lo, hi = sketch.rank_bounds(k)
        assert lo <= s[k - 1] <= hi, (k, lo, s[k - 1], hi)


class TestFromArray:
    def test_empty(self):
        sk = QuantileSketch.from_array(np.array([]), eps=0.1)
        assert sk.count == 0 and sk.size == 0

    def test_exact_on_small_input(self):
        arr = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        sk = QuantileSketch.from_array(arr, eps=0.01)
        s = np.sort(arr)
        for k in range(1, 6):
            lo, hi = sk.rank_bounds(k)
            assert lo == hi == s[k - 1]

    def test_stored_size_is_o_one_over_eps(self):
        arr = np.random.default_rng(0).random(100_000)
        for eps in (0.1, 0.01, 0.001):
            sk = QuantileSketch.from_array(arr, eps)
            assert sk.size <= 2 / eps + 2, (eps, sk.size)

    def test_rank_bounds_validation(self):
        sk = QuantileSketch.from_array(np.arange(10.0), 0.1)
        with pytest.raises(ConfigurationError):
            sk.rank_bounds(0)
        with pytest.raises(ConfigurationError):
            sk.rank_bounds(11)

    def test_eps_validation(self):
        for bad in (0.0, -0.1, 0.6, 2):
            with pytest.raises(ConfigurationError):
                QuantileSketch.from_array(np.arange(4.0), bad)

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=200),
           st.sampled_from([0.01, 0.05, 0.2, 0.5]))
    @settings(max_examples=60, deadline=None)
    def test_brackets_with_duplicates(self, values, eps):
        arr = np.asarray(values, dtype=np.int64)
        assert_brackets(QuantileSketch.from_array(arr, eps), arr)


class TestMerge:
    @given(batches, st.sampled_from([0.02, 0.1, 0.3]))
    @settings(max_examples=60, deadline=None)
    def test_left_fold_merge_brackets(self, chunks, eps):
        sketches = [QuantileSketch.from_array(np.asarray(c), eps)
                    for c in chunks]
        merged = merge_all(sketches, eps=eps)
        data = np.concatenate([np.asarray(c) for c in chunks]) if any(
            len(c) for c in chunks) else np.array([])
        if data.size:
            assert_brackets(merged, data)
        else:
            assert merged.count == 0

    @given(batches, st.sampled_from([0.05, 0.2]))
    @settings(max_examples=40, deadline=None)
    def test_merge_commutes_up_to_bounds(self, chunks, eps):
        """a.merge(b) and b.merge(a) need not store identical keys, but
        both must bracket every rank of the union."""
        if len(chunks) < 2:
            chunks = chunks + [[1.0, 2.0]]
        a = QuantileSketch.from_array(np.asarray(chunks[0]), eps)
        b = merge_all(
            [QuantileSketch.from_array(np.asarray(c), eps)
             for c in chunks[1:]], eps=eps,
        )
        data = np.concatenate([np.asarray(c) for c in chunks]) if any(
            len(c) for c in chunks) else np.array([])
        for merged in (a.merge(b), b.merge(a)):
            if data.size:
                assert_brackets(merged, data)
            else:
                assert merged.count == 0

    @given(batches, st.sampled_from([0.05, 0.2]))
    @settings(max_examples=40, deadline=None)
    def test_merge_associates_up_to_bounds(self, chunks, eps):
        while len(chunks) < 3:
            chunks = chunks + [[float(len(chunks))]]
        sks = [QuantileSketch.from_array(np.asarray(c), eps) for c in chunks]
        left = merge_all(sks, eps=eps)
        right = sks[0]
        tail = sks[1]
        for sk in sks[2:]:
            tail = tail.merge(sk)
        right = right.merge(tail)
        data = np.concatenate([np.asarray(c) for c in chunks]) if any(
            len(c) for c in chunks) else np.array([])
        for merged in (left, right):
            if data.size:
                assert_brackets(merged, data)

    def test_update_equals_merge_of_batches(self):
        rng = np.random.default_rng(3)
        a, b = rng.random(500), rng.random(800)
        sk = QuantileSketch.from_array(a, 0.05)
        sk.update(b)
        assert_brackets(sk, np.concatenate([a, b]))

    def test_merge_with_empty_is_identity_on_bounds(self):
        arr = np.random.default_rng(1).random(300)
        sk = QuantileSketch.from_array(arr, 0.05)
        merged = sk.merge(QuantileSketch(eps=0.05))
        assert_brackets(merged, arr)
        merged2 = QuantileSketch(eps=0.05).merge(sk)
        assert_brackets(merged2, arr)

    def test_merge_type_check(self):
        with pytest.raises(ConfigurationError):
            QuantileSketch().merge(object())


class TestAccuracy:
    @pytest.mark.parametrize("eps", [0.01, 0.05])
    @pytest.mark.parametrize("n_chunks", [1, 4])
    def test_bracket_width_within_eps(self, eps, n_chunks):
        """On distinct keys the bracket hides at most ~4*eps*n ranks: leaf
        uncertainties are exact, merge shifts add at most the other side's
        stored spacing, and compaction caps adjacent spans at 2*eps*n."""
        rng = np.random.default_rng(7)
        n = 40_000
        data = rng.permutation(n).astype(np.float64)
        chunk = n // n_chunks
        merged = merge_all([
            QuantileSketch.from_array(data[i * chunk:(i + 1) * chunk], eps)
            for i in range(n_chunks)
        ], eps=eps)
        s = np.sort(data)
        for k in (1, n // 10, n // 2, 9 * n // 10, n):
            lo, hi = merged.rank_bounds(k)
            inside = int(np.count_nonzero((s > lo) & (s < hi)))
            assert lo <= s[k - 1] <= hi
            assert inside <= 4 * eps * n + 4, (k, inside, eps)

    def test_all_equal_collapses_to_point(self):
        sk = QuantileSketch.from_array(np.full(1000, 7.0), 0.01)
        lo, hi = sk.rank_bounds(500)
        assert lo == hi == 7.0

    def test_rank_of_bounds_contain_truth(self):
        rng = np.random.default_rng(11)
        data = rng.integers(0, 40, size=2000).astype(np.int64)
        sk = merge_all([
            QuantileSketch.from_array(data[i::3], 0.05) for i in range(3)
        ], eps=0.05)
        for key in (-1, 0, 7, 20, 39, 41):
            lower, upper = sk.rank_of(key)
            true = int(np.count_nonzero(data <= key))
            assert lower <= true <= upper, (key, lower, true, upper)

    def test_rank_of_upper_bound_covers_compacted_duplicates(self):
        """A queried key equal to a stored key must not under-count its
        own duplicates that compaction dropped."""
        sk = QuantileSketch.from_array(
            np.array([5.0, 5.0, 5.0, 7.0]), eps=0.375
        )
        lower, upper = sk.rank_of(5.0)
        assert lower <= 3 <= upper
        merged = QuantileSketch.from_array(np.full(10, 5.0), 0.2).merge(
            QuantileSketch.from_array(np.full(10, 7.0), 0.2)
        )
        lower, upper = merged.rank_of(5.0)
        assert lower <= 10 <= upper


class TestPayload:
    def test_sim_words_counts_stored_arrays(self):
        sk = QuantileSketch.from_array(np.arange(1000.0), 0.05)
        assert sk.__sim_words__() == sk.size * 3 + 2

    def test_payload_words_uses_protocol(self):
        from repro.machine.collectives import payload_words

        sk = QuantileSketch.from_array(np.arange(1000.0), 0.05)
        assert payload_words(sk) == sk.__sim_words__()
        assert payload_words([sk, sk]) == 2 * sk.__sim_words__()

    def test_pickle_roundtrip(self):
        import pickle

        sk = QuantileSketch.from_array(np.arange(100.0), 0.1)
        back = pickle.loads(pickle.dumps(sk))
        assert back.count == sk.count
        assert (back.keys == sk.keys).all()
        assert back.rank_bounds(50) == sk.rank_bounds(50)
