"""Units of the shared selection scaffolding (Step 6 logic, config, stats)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro
from repro.balance.base import NoBalance
from repro.errors import ConfigurationError, ConvergenceError
from repro.selection.base import (
    IterationRecord,
    SelectionConfig,
    SelectionStats,
    check_rank,
    decide_side,
    endgame_threshold,
)


class TestDecideSide:
    def test_target_below_pivot(self):
        d = decide_side(k=3, c_less=10, c_eq=2, n=20)
        assert not d.found and d.keep_low
        assert d.new_n == 10 and d.new_k == 3

    def test_target_in_equal_band(self):
        d = decide_side(k=11, c_less=10, c_eq=2, n=20)
        assert d.found

    def test_band_boundaries(self):
        assert decide_side(10, 10, 2, 20).keep_low  # k == c_less -> low side
        assert decide_side(11, 10, 2, 20).found     # first band rank
        assert decide_side(12, 10, 2, 20).found     # last band rank
        d = decide_side(13, 10, 2, 20)              # one past the band
        assert not d.found and not d.keep_low
        assert d.new_n == 8 and d.new_k == 1

    def test_all_equal_terminates(self):
        d = decide_side(k=5, c_less=0, c_eq=20, n=20)
        assert d.found

    @given(st.data())
    def test_property_rank_stays_valid(self, data):
        # Counts come from a real 3-way split around an actual data element:
        # the pivot occupies at least one slot (c_eq >= 1) and never counts
        # itself below (c_less <= n - c_eq).
        n = data.draw(st.integers(1, 10_000))
        k = data.draw(st.integers(1, n))
        c_eq = data.draw(st.integers(1, n))
        c_less = data.draw(st.integers(0, n - c_eq))
        d = decide_side(k, c_less, c_eq, n)
        if not d.found:
            assert 1 <= d.new_k <= d.new_n
            assert d.new_n < n  # progress is guaranteed by the 3-way split


class TestCheckRank:
    def test_accepts_valid(self):
        check_rank(10, 1)
        check_rank(10, 10)

    @pytest.mark.parametrize("n,k", [(0, 1), (10, 0), (10, 11), (-5, 1)])
    def test_rejects_invalid(self, n, k):
        with pytest.raises(ConfigurationError):
            check_rank(n, k)


class TestSelectionConfig:
    def test_defaults(self):
        cfg = SelectionConfig()
        assert isinstance(cfg.balancer, NoBalance)
        assert cfg.sequential_method == "randomized"
        assert cfg.impl_override is None

    def test_iteration_guard_scales_with_n(self):
        cfg = SelectionConfig()
        assert cfg.iteration_guard(1 << 20) > cfg.iteration_guard(16)

    def test_explicit_max_iterations_wins(self):
        cfg = SelectionConfig(max_iterations=7)
        assert cfg.iteration_guard(1 << 30) == 7

    def test_endgame_threshold_default_p_squared(self):
        assert endgame_threshold(SelectionConfig(), 8) == 64
        assert endgame_threshold(SelectionConfig(), 1) == 1

    def test_endgame_threshold_override(self):
        cfg = SelectionConfig(endgame_threshold=5000)
        assert endgame_threshold(cfg, 128) == 5000

    def test_endgame_threshold_floor_one(self):
        cfg = SelectionConfig(endgame_threshold=0)
        assert endgame_threshold(cfg, 2) == 1


class TestStats:
    def test_record_counts(self):
        stats = SelectionStats(algorithm="x", n=100, p=2, k=50)
        stats.record(IterationRecord(100, 40, 50, 50, 1.5, 50, 20, True))
        stats.record(IterationRecord(40, 10, 50, 10, 2.5, 20, 5, False,
                                     successful=False))
        assert stats.n_iterations == 2
        assert stats.balance_invocations == 1
        assert stats.unsuccessful_iterations == 1

    def test_shrink(self):
        rec = IterationRecord(100, 25, 1, 1, 0, 0, 0, False)
        assert rec.shrink == 0.25


class TestConvergenceGuards:
    def test_endgame_with_empty_survivors_raises(self):
        # Force a state where the endgame receives nothing: n=0 cannot be
        # produced through the API (check_rank guards), so exercise the
        # guard through a raw SPMD program.
        from repro.kernels import CostedKernels
        from repro.machine import run_spmd
        from repro.selection.base import endgame

        def prog(ctx):
            return endgame(ctx, CostedKernels(ctx), np.array([]), 1,
                           "randomized")

        with pytest.raises(repro.WorkerError) as ei:
            run_spmd(prog, 2)
        assert isinstance(ei.value.cause, ConvergenceError)

    def test_endgame_with_bad_rank_raises(self):
        from repro.kernels import CostedKernels
        from repro.machine import run_spmd
        from repro.selection.base import endgame

        def prog(ctx):
            arr = np.arange(3.0) if ctx.rank == 0 else np.array([])
            return endgame(ctx, CostedKernels(ctx), arr, 99, "randomized")

        with pytest.raises(repro.WorkerError) as ei:
            run_spmd(prog, 2)
        assert isinstance(ei.value.cause, ConvergenceError)
