"""Primitive-level fidelity: each algorithm issues exactly the collectives
its pseudocode box in the paper prescribes, per iteration.

Algorithm 3 (randomized):    Step 1 PrefixSum, Step 3 pivot Combine
                             (realised broadcast), Step 5 Combine.
Algorithm 1 (MoM, no LB):    Step 2 Gather, Step 3 Broadcast, Step 5 Combine.
Algorithm 2 (bucket):        Step 2 Gather (pairs), Step 3 Broadcast,
                             Step 5 Combine.
Endgame (all):               one Gather + one Broadcast.

These tests use the tracer, so they pin the *communication structure*, not
timing — a refactor that quietly added or dropped a collective per
iteration would fail here.
"""


import repro
from repro.selection import ALGORITHMS, SelectionConfig


def traced_run(algo, n=20_000, p=4, seed=0, balancer=None, dist="random"):
    machine = repro.Machine(n_procs=p, trace=True)
    data = machine.generate(n, distribution=dist, seed=seed)
    fn, default_seq, _ = ALGORITHMS[algo]
    from repro.balance import get_balancer

    cfg = SelectionConfig(
        balancer=get_balancer(balancer),
        sequential_method=default_seq,
        seed=seed,
    )

    def program(ctx, shard):
        return fn(ctx, shard.copy(), (n + 1) // 2, cfg)

    result = machine.run(program, rank_args=[(s,) for s in data.shards])
    value, stats = result.values[0]
    return result.tracer, stats


class TestRandomizedStructure:
    def test_collectives_per_iteration(self):
        tracer, stats = traced_run("randomized", seed=3)
        it = stats.n_iterations
        endgame = 0 if stats.found_by_pivot else 1
        # Step 1 prefix per iteration.
        assert tracer.count("prefix", rank=0) == it
        # Initial size allreduce + per iteration: pivot combine + counts
        # combine.
        assert tracer.count("combine", rank=0) == 1 + 2 * it
        # Endgame: one gather + one broadcast.
        assert tracer.count("gather", rank=0) == endgame
        assert tracer.count("broadcast", rank=0) == endgame
        # Nothing else.
        assert tracer.count("alltoallv", rank=0) == 0
        assert tracer.count("pairwise_exchange", rank=0) == 0

    def test_all_ranks_issue_identical_sequences(self):
        tracer, _ = traced_run("randomized", seed=5)
        seq0 = [e.op for e in tracer.events(rank=0)]
        for r in range(1, 4):
            assert [e.op for e in tracer.events(rank=r)] == seq0


class TestMedianOfMediansStructure:
    def test_collectives_per_iteration_no_lb(self):
        tracer, stats = traced_run("median_of_medians", seed=1, balancer=None)
        it = stats.n_iterations
        endgame = 0 if stats.found_by_pivot else 1
        # Step 2 gather + endgame gather.
        assert tracer.count("gather", rank=0) == it + endgame
        # Step 3 broadcast + endgame broadcast.
        assert tracer.count("broadcast", rank=0) == it + endgame
        # Initial allreduce + Step 5 combine.
        assert tracer.count("combine", rank=0) == 1 + it

    def test_global_exchange_adds_one_transport_per_iteration(self):
        tracer, stats = traced_run("median_of_medians", seed=1,
                                   balancer="global_exchange")
        balanced_iters = stats.balance_invocations
        # Each global exchange: one Global Concatenate + one alltoallv.
        assert tracer.count("alltoallv", rank=0) == balanced_iters
        assert tracer.count("allgather", rank=0) == balanced_iters


class TestBucketStructure:
    def test_collectives_match_mom_shape(self):
        tracer, stats = traced_run("bucket_based", seed=2)
        it = stats.n_iterations
        endgame = 0 if stats.found_by_pivot else 1
        assert tracer.count("gather", rank=0) == it + endgame
        assert tracer.count("broadcast", rank=0) == it + endgame
        assert tracer.count("combine", rank=0) == 1 + it
        assert tracer.count("alltoallv", rank=0) == 0  # no balancing, ever


class TestDimensionExchangeStructure:
    def test_log_p_rounds_per_invocation(self):
        tracer, stats = traced_run("randomized", seed=4, p=8,
                                   balancer="dimension_exchange",
                                   dist="sorted")
        # Each invocation: log2(8)=3 dims x 2 exchanges (counts + data).
        exchanges = tracer.count("pairwise_exchange", rank=0)
        assert exchanges == stats.balance_invocations * 6


class TestFastRandomizedStructure:
    def test_sample_sort_present_each_iteration(self):
        tracer, stats = traced_run("fast_randomized", n=200_000, seed=6)
        it = stats.n_iterations
        # Each iteration runs one sample sort (1 alltoallv) and no other
        # transport when unbalanced.
        assert tracer.count("alltoallv", rank=0) == it
        # Two rank lookups (k1, k2) -> 2 broadcasts + 2 allgathers per
        # iteration, plus the sample-sort splitter broadcast, plus endgame.
        endgame = 0 if stats.found_by_pivot else 1
        assert tracer.count("broadcast", rank=0) == 3 * it + endgame
