"""The async multi-tenant serving tier (repro.serve).

Pins the tentpole contracts: coalescing across concurrent tenants into
single launches, bit-identity with direct Session queries, admission
control and per-tenant fairness, per-query error isolation, graceful
shutdown, and self-observability through the service's own
QuantileSketch. Plain ``asyncio.run`` drives the coroutines — no
pytest-asyncio dependency.
"""

import asyncio

import numpy as np
import pytest

import repro
from repro.errors import AdmissionError, ServiceClosed
from repro.serve import (
    SelectionService,
    direct_answers,
    replay,
    synthetic_trace,
)

N = 8192
P = 4


@pytest.fixture
def machine():
    return repro.Machine(n_procs=P)


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_queries_share_one_launch(self, machine):
        async def main():
            async with SelectionService(machine, window=0.001) as svc:
                svc.register("a", machine.generate(N, seed=1))
                before = machine.launch_count
                reports = await asyncio.gather(*(
                    svc.select("a", 100 * (i + 1), tenant=f"t{i % 3}")
                    for i in range(12)
                ))
                return machine.launch_count - before, reports

        launches, reports = run(main())
        assert launches == 1, (
            f"12 concurrent same-array queries must share ONE launch, "
            f"paid {launches}"
        )
        assert [r.k for r in reports] == [100 * (i + 1) for i in range(12)]

    def test_repeat_queries_hit_cache_zero_launches(self, machine):
        async def main():
            async with SelectionService(machine, window=0.001) as svc:
                svc.register("a", machine.generate(N, seed=1))
                first = await svc.select("a", 42)
                before = machine.launch_count
                again = await svc.select("a", 42)
                return first, again, machine.launch_count - before

        first, again, launches = run(main())
        assert launches == 0
        assert again.cached and again.value == first.value

    def test_bit_identical_to_direct_session(self, machine):
        data = machine.generate(N, seed=3)
        trace = synthetic_trace(24, tenants=3, arrays=("a",), seed=5)

        async def main():
            async with SelectionService(machine, window=0.001) as svc:
                svc.register("a", data)
                return await replay(svc, trace, concurrency=8)

        got = run(main())
        expected = direct_answers(machine, {"a": data}, trace)
        assert got == expected, (
            "service answers must be bit-identical to direct Session "
            "queries"
        )

    def test_multiple_arrays_one_launch_each(self, machine):
        async def main():
            async with SelectionService(machine, window=0.001) as svc:
                svc.register("a", machine.generate(N, seed=1))
                svc.register("b", machine.generate(N, seed=2))
                before = machine.launch_count
                await asyncio.gather(
                    svc.select("a", 10), svc.select("a", 20),
                    svc.select("b", 10), svc.select("b", 20),
                )
                return machine.launch_count - before

        assert run(main()) == 2  # one launch per (array, plan) group

    def test_launches_saved_counter(self, machine):
        async def main():
            async with SelectionService(machine, window=0.001) as svc:
                svc.register("a", machine.generate(N, seed=1))
                await asyncio.gather(*(
                    svc.select("a", 11 * (i + 1)) for i in range(8)
                ))
                return svc.stats

        stats = run(main())
        assert stats.launches == 1
        assert stats.launches_saved == 7  # query-at-a-time would pay 8


class TestValidationAndRegistry:
    def test_out_of_range_rank_no_launch(self, machine):
        async def main():
            async with SelectionService(machine, window=0.001) as svc:
                svc.register("a", machine.generate(N, seed=1))
                before = machine.launch_count
                for bad in (0, -1, N + 1):
                    with pytest.raises(repro.ConfigurationError,
                                       match="out of range"):
                        await svc.select("a", bad)
                with pytest.raises(repro.ConfigurationError,
                                   match="outside"):
                    await svc.quantile("a", 1.5)
                return machine.launch_count - before

        assert run(main()) == 0

    def test_unknown_array_name(self, machine):
        async def main():
            async with SelectionService(machine, window=0.001) as svc:
                with pytest.raises(repro.ConfigurationError,
                                   match="no array registered"):
                    await svc.select("ghost", 1)

        run(main())

    def test_register_distributes_host_arrays(self, machine):
        svc = SelectionService(machine)
        data = svc.register("h", np.arange(100, dtype=float))
        assert data.n == 100 and data.machine is machine
        svc.unregister("h")
        with pytest.raises(repro.ConfigurationError):
            svc.unregister("h")

    def test_foreign_machine_rejected(self, machine):
        other = repro.Machine(n_procs=2)
        svc = SelectionService(machine)
        with pytest.raises(repro.ConfigurationError,
                           match="different Machine"):
            svc.register("x", other.generate(64, seed=0))


class TestAdmission:
    def test_per_tenant_cap_preserves_other_tenants(self, machine):
        async def main():
            svc = SelectionService(machine, window=0.05, max_in_flight=8,
                                   max_per_tenant=2)
            svc.register("a", machine.generate(N, seed=1))
            async with svc:
                hot = [
                    asyncio.ensure_future(
                        svc.select("a", 10 + i, tenant="hot")
                    )
                    for i in range(4)
                ]
                await asyncio.sleep(0)  # let the submits run
                # The cold tenant must still be admitted while the hot
                # tenant sits at its cap.
                cold = await svc.select("a", 99, tenant="cold")
                results = await asyncio.gather(*hot,
                                               return_exceptions=True)
            rejected = [r for r in results
                        if isinstance(r, AdmissionError)]
            served = [r for r in results
                      if isinstance(r, repro.SelectionReport)]
            return rejected, served, cold

        rejected, served, cold = run(main())
        assert len(rejected) == 2 and len(served) == 2
        assert "fairness cap" in str(rejected[0])
        assert cold.k == 99

    def test_global_capacity_cap(self, machine):
        async def main():
            svc = SelectionService(machine, window=0.05, max_in_flight=2,
                                   max_per_tenant=2)
            svc.register("a", machine.generate(N, seed=1))
            async with svc:
                t1 = asyncio.ensure_future(svc.select("a", 1, tenant="x"))
                t2 = asyncio.ensure_future(svc.select("a", 2, tenant="y"))
                await asyncio.sleep(0)
                with pytest.raises(AdmissionError, match="capacity"):
                    await svc.select("a", 3, tenant="z")
                await asyncio.gather(t1, t2)
                return svc.stats

        stats = run(main())
        assert stats.rejected == 1 and stats.resolved == 2


class TestErrorRouting:
    def test_one_tenants_failure_never_fails_anothers_batch(self, machine):
        async def main():
            async with SelectionService(machine, window=0.001) as svc:
                svc.register("a", machine.generate(60_000, seed=2))
                # Tenant A's plan fires the convergence guard inside its
                # own launch group; tenant B rides the default plan in
                # the SAME flush cycle.
                doomed = asyncio.ensure_future(svc.select(
                    "a", 100, tenant="A", algorithm="randomized",
                    max_iterations=0,
                ))
                healthy = asyncio.ensure_future(
                    svc.select("a", 200, tenant="B")
                )
                return await asyncio.gather(doomed, healthy,
                                            return_exceptions=True)

        doomed, healthy = run(main())
        assert isinstance(doomed, repro.WorkerError)
        assert isinstance(doomed.cause, repro.ConvergenceError)
        assert isinstance(healthy, repro.SelectionReport)

    def test_service_survives_failed_cycles(self, machine):
        async def main():
            async with SelectionService(machine, window=0.001) as svc:
                svc.register("a", machine.generate(60_000, seed=2))
                with pytest.raises(repro.WorkerError):
                    await svc.select("a", 1, algorithm="randomized",
                                     max_iterations=0)
                after = await svc.select("a", 1)
                return after, svc.stats

        after, stats = run(main())
        assert after.value is not None
        assert stats.errors == 1 and stats.resolved == 1


class TestShutdown:
    def test_close_drains_in_flight_queries(self, machine):
        async def main():
            svc = SelectionService(machine, window=0.05)
            svc.register("a", machine.generate(N, seed=1))
            tasks = [
                asyncio.ensure_future(svc.select("a", 10 * (i + 1)))
                for i in range(5)
            ]
            await asyncio.sleep(0)
            await svc.close()  # drain=True
            return await asyncio.gather(*tasks), svc

        reports, svc = run(main())
        assert all(isinstance(r, repro.SelectionReport) for r in reports)
        assert svc.closed and svc.in_flight == 0

    def test_submit_after_close_raises(self, machine):
        async def main():
            svc = SelectionService(machine, window=0.001)
            svc.register("a", machine.generate(N, seed=1))
            await svc.close()
            with pytest.raises(ServiceClosed):
                await svc.select("a", 1)

        run(main())

    def test_close_without_drain_cancels_queued(self, machine):
        async def main():
            svc = SelectionService(machine, window=10.0)  # never elapses
            svc.register("a", machine.generate(N, seed=1))
            tasks = [
                asyncio.ensure_future(svc.select("a", 10 + i))
                for i in range(3)
            ]
            await asyncio.sleep(0)
            await svc.close(drain=False)
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = run(main())
        assert all(isinstance(r, ServiceClosed) for r in results)

    def test_close_is_idempotent(self, machine):
        async def main():
            svc = SelectionService(machine, window=0.001)
            await svc.close()
            await svc.close()

        run(main())

    def test_close_releases_pool_workers(self):
        machine = repro.Machine(n_procs=2, backend="pool")

        async def main():
            async with SelectionService(machine, window=0.001) as svc:
                svc.register("a", machine.generate(2048, seed=1))
                await svc.select("a", 100)

        run(main())
        # release_workers ran on close: the pool backend's generation is
        # gone, its shared-memory pins are dropped, and a later launch
        # transparently re-provisions.
        assert machine.runtime.backend.name == "pool"
        assert machine.runtime.backend.pinned_bytes == 0
        rep = machine.generate(2048, seed=1).select(7)
        assert rep.value is not None


class TestObservability:
    def test_stats_and_latency_sketch(self, machine):
        async def main():
            async with SelectionService(machine, window=0.001) as svc:
                svc.register("a", machine.generate(N, seed=1))
                await asyncio.gather(*(
                    svc.select("a", 7 * (i + 1), tenant=f"t{i % 2}")
                    for i in range(10)
                ))
                return svc.stats, svc.latency_sketch

        stats, sketch = run(main())
        assert stats.queries == 10 and stats.resolved == 10
        assert stats.tenants == 2 and stats.flush_cycles >= 1
        # p50/p99 must be READ FROM the service's own sketch.
        assert stats.latency_count == sketch.count == 10
        assert stats.p50_s == float(sketch.quantile(0.50))
        assert stats.p99_s == float(sketch.quantile(0.99))
        assert 0.0 < stats.p50_s <= stats.p99_s

    def test_pool_backend_reuse_receipt(self):
        # The pool backend is shared per name, so its counters are
        # cumulative across machines: assert deltas, like the benches do.
        machine = repro.Machine(n_procs=2, backend="pool")
        forks0, reuse0 = machine.fork_count, machine.reuse_count

        async def main():
            async with SelectionService(machine, window=0.001) as svc:
                svc.register("a", machine.generate(4096, seed=1))
                for i in range(3):
                    await svc.select("a", 50 * (i + 1))
                return machine.fork_count, machine.reuse_count

        forks, reuses = run(main())
        assert forks - forks0 == 1, "a long-lived service must fork ONCE"
        assert reuses - reuse0 >= 2, "later launches ride warm workers"


class TestTraceHelpers:
    def test_synthetic_trace_deterministic_and_fair(self):
        a = synthetic_trace(50, tenants=3, seed=9)
        b = synthetic_trace(50, tenants=3, seed=9)
        assert a == b
        assert {t.tenant for t in a} <= {f"tenant{i}" for i in range(3)}
        hot = synthetic_trace(200, tenants=4, hot_share=0.9, seed=9)
        share = sum(t.tenant == "tenant0" for t in hot) / len(hot)
        assert share > 0.5

    def test_trace_validation(self):
        with pytest.raises(repro.ConfigurationError):
            synthetic_trace(0)
        with pytest.raises(repro.ConfigurationError):
            synthetic_trace(5, kinds=("nope",))
        with pytest.raises(repro.ConfigurationError):
            synthetic_trace(5, hot_share=1.5)
