"""The execution-backend layer itself: registry + selection plumbing,
the serial scheduler's cooperative guarantees, and the process backend's
transport mechanics."""

import threading
import time

import numpy as np
import pytest

import repro
from repro.errors import CommunicationError, ConfigurationError, WorkerError
from repro.machine import (
    available_backends,
    get_backend,
    resolve_backend,
    run_spmd,
)
from repro.machine.backends import BACKEND_ENV_VAR, BACKENDS, ExecutionBackend
from repro.machine.backends.process import (
    UnpicklableWorkerFailure,
    _SharedArray,
)


class TestRegistry:
    def test_four_backends_registered(self):
        assert available_backends() == ("pool", "process", "serial",
                                        "threaded")

    def test_unknown_backend_lists_options(self):
        with pytest.raises(ConfigurationError, match=r"available: \["):
            get_backend("mpi")

    def test_resolve_accepts_instance_and_none(self, monkeypatch):
        assert resolve_backend(BACKENDS["serial"]) is BACKENDS["serial"]
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None).name == "threaded"
        assert resolve_backend("process").name == "process"

    def test_resolve_rejects_other_types(self):
        with pytest.raises(ConfigurationError, match="ExecutionBackend"):
            resolve_backend(42)

    def test_every_backend_names_itself(self):
        for name, backend in BACKENDS.items():
            assert isinstance(backend, ExecutionBackend)
            assert backend.name == name


class TestEnvDefault:
    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "serial")
        assert repro.Machine(n_procs=2).backend_name == "serial"
        assert run_spmd(lambda ctx: ctx.rank, 2).backend == "serial"

    def test_explicit_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "serial")
        assert repro.Machine(n_procs=2, backend="threaded").backend_name == (
            "threaded"
        )

    def test_bogus_env_value_is_a_clean_error(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "cluster")
        with pytest.raises(ConfigurationError, match="REPRO_BACKEND"):
            repro.Machine(n_procs=2)

    def test_empty_env_value_means_threaded(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert repro.Machine(n_procs=2).backend_name == "threaded"


class TestSelectionPlumbing:
    def test_machine_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="available"):
            repro.Machine(n_procs=2, backend="gpu")

    def test_plan_rejects_unknown_backend_listing_options(self):
        with pytest.raises(
            ConfigurationError,
            match=r"unknown backend 'gpu'; available: "
                  r"\['pool', 'process', 'serial', 'threaded'\]",
        ):
            repro.SelectionPlan(backend="gpu")

    def test_plan_backend_flows_through_session_launch(self):
        machine = repro.Machine(n_procs=3, backend="threaded")
        data = machine.generate(900, seed=1)
        plan = repro.SelectionPlan(backend="serial", seed=1)
        with machine.session(plan) as s:
            fut = s.select(data, 450)
        assert fut.result().backend == "serial"

    def test_per_launch_override_does_not_change_machine_default(self):
        machine = repro.Machine(n_procs=2, backend="threaded")
        res = machine.run(lambda ctx: ctx.rank, backend="serial")
        assert res.backend == "serial"
        assert machine.backend_name == "threaded"
        assert machine.run(lambda ctx: ctx.rank).backend == "threaded"

    def test_legacy_api_accepts_backend(self):
        machine = repro.Machine(n_procs=2)
        data = machine.generate(400, seed=0)
        rep = repro.select(data, 200, backend="serial")
        assert rep.backend == "serial"
        multi = repro.multi_select(data, [1, 400], backend="serial")
        assert multi.backend == "serial"


class TestSerialScheduler:
    def test_exactly_one_rank_runs_at_a_time(self):
        lock = threading.Lock()
        state = {"active": 0, "max_active": 0}

        def prog(ctx):
            for _ in range(3):
                with lock:
                    state["active"] += 1
                    state["max_active"] = max(
                        state["max_active"], state["active"]
                    )
                time.sleep(0.002)  # sleeping does NOT yield the token
                with lock:
                    state["active"] -= 1
                ctx.comm.barrier()

        run_spmd(prog, 4, backend="serial")
        assert state["max_active"] == 1

    def test_interleaving_is_deterministic(self):
        def prog(ctx, log):
            for i in range(3):
                log.append((ctx.rank, i))
                ctx.comm.barrier()
            return None

        logs = []
        for _ in range(3):
            log = []
            run_spmd(prog, 4, rank_args=[(log,)] * 4, backend="serial")
            logs.append(tuple(log))
        assert len(set(logs)) == 1, "serial interleaving must be reproducible"

    def test_deadlock_detected_instead_of_hanging(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.recv(1, tag="never-sent")
            else:
                ctx.comm.barrier()

        t0 = time.perf_counter()
        with pytest.raises(WorkerError) as ei:
            run_spmd(prog, 3, backend="serial")
        assert time.perf_counter() - t0 < 5.0, "deadlock must be detected fast"
        assert isinstance(ei.value.cause, CommunicationError)
        assert "deadlock" in str(ei.value.cause)
        assert "rank 0 in recv" in str(ei.value.cause)

    def test_early_return_desync_is_detected(self):
        def prog(ctx):
            if ctx.rank == 2:
                return  # never reaches the barrier the others wait at
            ctx.comm.barrier()

        with pytest.raises(WorkerError) as ei:
            run_spmd(prog, 3, backend="serial")
        assert isinstance(ei.value.cause, CommunicationError)

    def test_point_to_point_and_alltoall(self):
        def prog(ctx):
            ctx.comm.send((ctx.rank + 1) % ctx.size, ctx.rank * 10.0)
            got = ctx.comm.recv((ctx.rank - 1) % ctx.size)
            received = ctx.comm.alltoallv(
                [np.full(2, ctx.rank) for _ in range(ctx.size)]
            )
            return got, sum(int(r[0]) for r in received)

        res = run_spmd(prog, 4, backend="serial")
        assert [v[0] for v in res.values] == [30.0, 0.0, 10.0, 20.0]
        assert [v[1] for v in res.values] == [6, 6, 6, 6]


class TestProcessTransport:
    def test_shared_array_roundtrip(self):
        arr = np.arange(17.0) * 1.5
        shared = _SharedArray(arr)
        view = shared.as_array()
        assert view.dtype == arr.dtype and view.shape == arr.shape
        np.testing.assert_array_equal(view, arr)

    def test_shared_array_empty(self):
        shared = _SharedArray(np.array([], dtype=np.int64))
        assert shared.as_array().size == 0
        assert shared.as_array().dtype == np.int64

    def test_point_to_point_and_alltoall_across_processes(self):
        def prog(ctx):
            ctx.comm.send((ctx.rank + 1) % ctx.size, ctx.rank * 10.0)
            got = ctx.comm.recv((ctx.rank - 1) % ctx.size)
            received = ctx.comm.alltoallv(
                [np.full(2, ctx.rank) for _ in range(ctx.size)]
            )
            return got, sum(int(r[0]) for r in received)

        res = run_spmd(prog, 4, backend="process")
        assert [v[0] for v in res.values] == [30.0, 0.0, 10.0, 20.0]
        assert [v[1] for v in res.values] == [6, 6, 6, 6]

    def test_unpicklable_worker_exception_is_wrapped(self):
        def prog(ctx):
            if ctx.rank == 1:
                class Local(Exception):  # local class: cannot unpickle
                    pass

                raise Local("inner detail")
            ctx.comm.barrier()

        with pytest.raises(WorkerError) as ei:
            run_spmd(prog, 2, backend="process")
        assert ei.value.rank == 1
        assert isinstance(ei.value.cause, UnpicklableWorkerFailure)
        assert "inner detail" in str(ei.value.cause)

    def test_trace_events_cross_the_process_boundary(self):
        def prog(ctx):
            ctx.comm.broadcast(ctx.rank, root=0)
            ctx.comm.combine(1)

        threaded = run_spmd(prog, 3, trace=True, backend="threaded")
        proc = run_spmd(prog, 3, trace=True, backend="process")
        for op in ("broadcast", "combine"):
            assert proc.tracer.count(op) == threaded.tracer.count(op) == 3

    def test_unmatched_send_is_reported(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.send(1, "orphan", tag="lost")
            ctx.comm.barrier()

        with pytest.raises(WorkerError) as ei:
            run_spmd(prog, 2, backend="process")
        assert isinstance(ei.value.cause, CommunicationError)
        assert "undelivered" in str(ei.value.cause)
