"""Cross-backend differential suite: the paper's algorithms are
machine-independent, so every selection variant must produce identical
values, RNG streams AND identical simulated-time evidence whichever
execution backend drives the ranks.

``serial`` vs ``threaded`` are held to the full bar (bit-identical values,
clocks, per-category breakdowns, iteration/pivot streams) across every
algorithm and a spread of data distributions, for both single-rank
``select`` and batched ``multi_select``. The ``process`` backend — ranks
in separate forked processes — is held to the same bar on a sub-grid
(forks are expensive; the mechanism, not the grid, is what differs), and
so is the persistent ``pool`` backend, whose sub-grid runs on reused
warm workers (reuse asserted via ``fork_count``) so the zero-fork
dispatch path itself is what is held to the bar.
"""

import numpy as np
import pytest

import repro
from repro.selection import ALGORITHMS

P = 4
N = 1500
DISTRIBUTIONS = ["random", "sorted", "few_distinct", "skewed_shards"]


def _run_select(backend, algorithm, distribution, n=N, seed=2,
                topology=None):
    machine = repro.Machine(n_procs=P, backend=backend, topology=topology)
    data = machine.generate(n, distribution=distribution, seed=seed)
    return data.select(max(1, n // 3), algorithm=algorithm, seed=seed)


def _run_multi(backend, algorithm, distribution, n=N, seed=2,
               topology=None):
    machine = repro.Machine(n_procs=P, backend=backend, topology=topology)
    data = machine.generate(n, distribution=distribution, seed=seed)
    ks = [1, n // 4, n // 2, n // 2, (3 * n) // 4, n]
    return data.multi_select(ks, algorithm=algorithm, seed=seed)


def _assert_same_launch_evidence(a, b):
    """Full bit-identity of two reports' launch evidence."""
    assert a.simulated_time == b.simulated_time
    assert a.breakdown == b.breakdown
    assert a.result.clocks == b.result.clocks
    assert a.result.breakdowns == b.result.breakdowns
    assert a.stats.n_iterations == b.stats.n_iterations
    assert [it.pivot for it in a.stats.iterations] == [
        it.pivot for it in b.stats.iterations
    ], "RNG/pivot streams diverged across backends"


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
class TestSerialVsThreaded:
    def test_select_bit_identical(self, algorithm, distribution):
        serial = _run_select("serial", algorithm, distribution)
        threaded = _run_select("threaded", algorithm, distribution)
        assert serial.backend == "serial"
        assert threaded.backend == "threaded"
        assert serial.value == threaded.value
        _assert_same_launch_evidence(serial, threaded)

    def test_multi_select_bit_identical(self, algorithm, distribution):
        serial = _run_multi("serial", algorithm, distribution)
        threaded = _run_multi("threaded", algorithm, distribution)
        assert serial.values == threaded.values
        assert serial.ks == threaded.ks
        assert serial.simulated_time == threaded.simulated_time
        assert serial.breakdown == threaded.breakdown
        assert serial.result.clocks == threaded.result.clocks
        assert serial.result.breakdowns == threaded.result.breakdowns


@pytest.mark.parametrize("distribution", ["random", "few_distinct"])
@pytest.mark.parametrize(
    "algorithm", ["fast_randomized", "median_of_medians"]
)
class TestProcessConformance:
    """Forked ranks must match the in-process backends bit-for-bit."""

    def test_select_matches_threaded(self, algorithm, distribution):
        proc = _run_select("process", algorithm, distribution)
        threaded = _run_select("threaded", algorithm, distribution)
        assert proc.backend == "process"
        assert proc.value == threaded.value
        _assert_same_launch_evidence(proc, threaded)

    def test_multi_select_matches_threaded(self, algorithm, distribution):
        proc = _run_multi("process", algorithm, distribution)
        threaded = _run_multi("threaded", algorithm, distribution)
        assert proc.values == threaded.values
        assert proc.simulated_time == threaded.simulated_time
        assert proc.breakdown == threaded.breakdown
        assert proc.result.clocks == threaded.result.clocks


@pytest.mark.parametrize("distribution", ["random", "few_distinct"])
@pytest.mark.parametrize(
    "algorithm", ["fast_randomized", "median_of_medians"]
)
class TestPoolConformance:
    """Persistent warm workers must match the in-process backends
    bit-for-bit — and must actually be warm (no per-launch forks)."""

    def test_select_matches_threaded(self, algorithm, distribution):
        from repro.machine.backends import BACKENDS

        forks_before = BACKENDS["pool"].fork_count
        pool = _run_select("pool", algorithm, distribution)
        # At most one generation fork per launch sequence; never one per
        # launch (the machine above runs exactly one launch).
        assert BACKENDS["pool"].fork_count - forks_before <= 1
        threaded = _run_select("threaded", algorithm, distribution)
        assert pool.backend == "pool"
        assert pool.value == threaded.value
        _assert_same_launch_evidence(pool, threaded)

    def test_multi_select_matches_threaded(self, algorithm, distribution):
        pool = _run_multi("pool", algorithm, distribution)
        threaded = _run_multi("threaded", algorithm, distribution)
        assert pool.values == threaded.values
        assert pool.simulated_time == threaded.simulated_time
        assert pool.breakdown == threaded.breakdown
        assert pool.result.clocks == threaded.result.clocks


class TestOracleAcrossBackends:
    """Every backend's answers check out against a host-side sort."""

    @pytest.mark.parametrize(
        "backend", ["serial", "threaded", "process", "pool"]
    )
    def test_quantiles_match_sorted_oracle(self, backend):
        machine = repro.Machine(n_procs=P, backend=backend)
        data = machine.generate(N, distribution="gaussian", seed=5)
        oracle = np.sort(data.gather())
        reports = data.quantiles([0.1, 0.5, 0.9], seed=5)
        for q, rep in zip([0.1, 0.5, 0.9], reports):
            assert rep.value == oracle[max(1, int(np.ceil(q * N))) - 1]
            assert rep.backend == backend

    @pytest.mark.parametrize(
        "backend", ["serial", "threaded", "process", "pool"]
    )
    def test_single_rank_machine(self, backend):
        # p == 1 takes the shared inline fast path on every backend.
        machine = repro.Machine(n_procs=1, backend=backend)
        data = machine.distribute(np.array([5.0, 1.0, 4.0, 2.0, 3.0]))
        rep = data.select(2)
        assert rep.value == 2.0
        assert rep.backend == backend


class TestSessionAcrossBackends:
    def test_coalesced_flush_identical_serial_threaded(self):
        answers = {}
        for backend in ("serial", "threaded"):
            machine = repro.Machine(n_procs=P, backend=backend)
            data = machine.generate(N, distribution="zipf", seed=9)
            with machine.session() as s:
                futures = [s.select(data, k) for k in (1, N // 2, N)]
            answers[backend] = [
                (f.value, f.result().simulated_time) for f in futures
            ]
        assert answers["serial"] == answers["threaded"]

    def test_cached_report_keeps_originating_backend(self):
        machine = repro.Machine(n_procs=P, backend="threaded")
        data = machine.generate(N, seed=0)
        first = data.select(7, backend="serial")
        again = data.select(7, backend="serial")
        assert first.backend == "serial"
        assert again.cached and again.backend == "serial"

    def test_backend_is_part_of_the_cache_identity(self):
        machine = repro.Machine(n_procs=P)
        data = machine.generate(N, seed=0)
        before = machine.launch_count
        a = data.select(3, backend="serial")
        b = data.select(3, backend="threaded")
        assert machine.launch_count - before == 2
        assert not b.cached
        assert a.value == b.value


TOPOLOGY_GRID = ["binomial-tree", "hypercube", "two-level", "two-level:2"]


class TestTopologyConformance:
    """The machine shape is one more axis the differential bar covers:
    values are bit-identical to the crossbar on every topology, and the
    full launch evidence (clocks, breakdowns, pivot streams) is
    bit-identical between the serial and threaded backends on every
    topology — the schedules only reprice rounds, deterministically."""

    @pytest.mark.parametrize("topology", TOPOLOGY_GRID)
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_select_values_match_crossbar(self, algorithm, topology):
        machine = repro.Machine(n_procs=P, topology=topology)
        data = machine.generate(N, distribution="zipf", seed=4)
        rep = data.select(N // 3, algorithm=algorithm, seed=4)
        baseline_machine = repro.Machine(n_procs=P)
        baseline_data = baseline_machine.generate(
            N, distribution="zipf", seed=4
        )
        base = baseline_data.select(N // 3, algorithm=algorithm, seed=4)
        assert rep.value == base.value
        assert rep.topology == topology.split(":")[0]
        assert base.topology == "crossbar"
        # Same pivot stream: the RNG draws are untouched by the shape.
        assert [it.pivot for it in rep.stats.iterations] == [
            it.pivot for it in base.stats.iterations
        ]

    @pytest.mark.parametrize("topology", TOPOLOGY_GRID)
    @pytest.mark.parametrize(
        "algorithm", ["fast_randomized", "median_of_medians"]
    )
    def test_serial_threaded_evidence_identical_per_topology(
        self, algorithm, topology
    ):
        serial = _run_select("serial", algorithm, "random",
                             topology=topology)
        threaded = _run_select("threaded", algorithm, "random",
                               topology=topology)
        assert serial.value == threaded.value
        _assert_same_launch_evidence(serial, threaded)

    @pytest.mark.parametrize("topology", TOPOLOGY_GRID)
    def test_multi_select_values_match_crossbar(self, topology):
        shaped = _run_multi("threaded", "fast_randomized", "random",
                            topology=topology)
        flat = _run_multi("threaded", "fast_randomized", "random")
        assert shaped.values == flat.values

    @pytest.mark.parametrize("backend", ["process", "pool"])
    def test_forked_backends_match_threaded_on_hypercube(self, backend):
        forked = _run_select(backend, "fast_randomized", "random",
                             topology="hypercube")
        threaded = _run_select("threaded", "fast_randomized", "random",
                               topology="hypercube")
        assert forked.value == threaded.value
        _assert_same_launch_evidence(forked, threaded)

    def test_topology_is_part_of_the_cache_identity(self):
        machine = repro.Machine(n_procs=P)
        data = machine.generate(N, seed=0)
        flat = data.select(9)
        shaped = data.select(9, topology="two-level")
        assert not shaped.cached  # different plan key, not a cache hit
        assert flat.value == shaped.value
        again = data.select(9, topology="two-level")
        assert again.cached and again.topology == "two-level"
