"""LocalBuckets: the O(log p) preprocessing structure of Algorithm 2."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigurationError
from repro.kernels.buckets import LocalBuckets, build_cost, default_n_buckets
from repro.machine.cost_model import CM5


class TestBuild:
    def test_bucket_order_invariant(self):
        arr = np.random.default_rng(0).random(1000)
        b = LocalBuckets.build(arr, 8)
        b.check_invariants()
        assert b.n_buckets <= 8
        assert b.total == 1000

    def test_equal_sizes_within_one_level(self):
        arr = np.random.default_rng(1).permutation(64).astype(float)
        b = LocalBuckets.build(arr, 8)
        sizes = [len(x) for x in b._buckets]
        assert sum(sizes) == 64
        assert max(sizes) - min(sizes) <= 1

    def test_rounds_up_to_power_of_two(self):
        arr = np.arange(100, dtype=float)
        b = LocalBuckets.build(arr, 5)  # -> 8 buckets
        assert b.n_buckets <= 8
        b.check_invariants()

    def test_as_array_preserves_multiset(self):
        arr = np.random.default_rng(2).integers(0, 50, 333)
        b = LocalBuckets.build(arr, 4)
        assert np.array_equal(np.sort(b.as_array()), np.sort(arr))

    def test_empty_array(self):
        b = LocalBuckets.build(np.array([]), 4)
        assert b.total == 0 and b.n_buckets == 0
        assert b.as_array().size == 0

    def test_single_element(self):
        b = LocalBuckets.build(np.array([7.0]), 8)
        assert b.total == 1
        v, _ = b.kth(1)
        assert v == 7.0

    def test_rejects_bad_nbuckets(self):
        with pytest.raises(ConfigurationError):
            LocalBuckets.build(np.arange(4), 0)

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            LocalBuckets.build(np.zeros((2, 2)), 2)


class TestDefaultNBuckets:
    @pytest.mark.parametrize("p,expect", [(1, 2), (2, 2), (4, 2), (8, 4),
                                          (32, 8), (128, 8)])
    def test_log_p_rounded(self, p, expect):
        assert default_n_buckets(p) == expect

    def test_cost_positive(self):
        assert build_cost(CM5, 1000, 8) > 0
        assert build_cost(CM5, 0, 8) == 0


class TestKth:
    def test_matches_sort(self):
        arr = np.random.default_rng(3).integers(0, 100, 500)
        b = LocalBuckets.build(arr, 8)
        ordered = np.sort(arr)
        for k in [1, 100, 250, 500]:
            v, scan = b.kth(k)
            assert v == ordered[k - 1]
            assert scan.touched > 0 and scan.probes >= 1

    def test_touches_only_one_bucket(self):
        arr = np.random.default_rng(4).random(1024)
        b = LocalBuckets.build(arr, 8)
        _, scan = b.kth(512)
        assert scan.touched <= 1024 // 8 + 1  # one bucket's worth

    def test_out_of_range(self):
        b = LocalBuckets.build(np.arange(10), 2)
        for k in (0, 11):
            with pytest.raises(ConfigurationError):
                b.kth(k)


class TestCount3:
    def test_matches_direct_counts(self):
        arr = np.random.default_rng(5).integers(0, 30, 400)
        b = LocalBuckets.build(arr, 8)
        for pivot in [-1, 0, 10, 15, 29, 35]:
            lt, eq, gt, _ = b.count3_vs(pivot)
            assert lt == int(np.sum(arr < pivot))
            assert eq == int(np.sum(arr == pivot))
            assert gt == int(np.sum(arr > pivot))

    def test_straddler_scan_is_partial(self):
        arr = np.random.default_rng(6).random(1024)
        b = LocalBuckets.build(arr, 8)
        _, _, _, scan = b.count3_vs(0.5)
        # Only the straddling bucket(s) are touched, not the whole array.
        assert scan.touched < 1024 // 2

    def test_empty(self):
        b = LocalBuckets.build(np.array([]), 4)
        assert b.count3_vs(1.0)[:3] == (0, 0, 0)


class TestKeep:
    def test_keep_lt(self):
        arr = np.random.default_rng(7).integers(0, 100, 300)
        b = LocalBuckets.build(arr, 8)
        b.keep_lt(50)
        kept = b.as_array()
        assert np.array_equal(np.sort(kept), np.sort(arr[arr < 50]))
        b.check_invariants()

    def test_keep_gt(self):
        arr = np.random.default_rng(8).integers(0, 100, 300)
        b = LocalBuckets.build(arr, 8)
        b.keep_gt(50)
        kept = b.as_array()
        assert np.array_equal(np.sort(kept), np.sort(arr[arr > 50]))
        b.check_invariants()

    def test_iterated_narrowing_matches_oracle(self):
        arr = np.random.default_rng(9).random(2000)
        b = LocalBuckets.build(arr, 8)
        live = arr.copy()
        for pivot, low in [(0.7, True), (0.2, False), (0.5, True)]:
            if low:
                b.keep_lt(pivot)
                live = live[live < pivot]
            else:
                b.keep_gt(pivot)
                live = live[live > pivot]
            assert np.array_equal(np.sort(b.as_array()), np.sort(live))

    def test_keep_on_all_equal(self):
        b = LocalBuckets.build(np.full(64, 5.0), 8)
        b.keep_lt(5.0)
        assert b.total == 0

    def test_scan_evidence_counts(self):
        arr = np.random.default_rng(10).random(1024)
        b = LocalBuckets.build(arr, 8)
        scan = b.keep_lt(0.5)
        assert 0 < scan.touched < 1024  # partial buckets only


@given(
    arrays(np.int64, st.integers(1, 400), elements=st.integers(0, 60)),
    st.data(),
)
def test_property_kth_equals_sorted(arr, data):
    b = LocalBuckets.build(arr, 8)
    k = data.draw(st.integers(1, arr.size))
    v, _ = b.kth(k)
    assert v == np.sort(arr)[k - 1]


@given(
    arrays(np.int64, st.integers(1, 300), elements=st.integers(0, 40)),
    st.integers(0, 40),
)
def test_property_count3_total(arr, pivot):
    b = LocalBuckets.build(arr, 4)
    lt, eq, gt, _ = b.count3_vs(pivot)
    assert lt + eq + gt == arr.size
