"""The repro-bench CLI."""

import pytest

from repro.bench.cli import ALL_IDS, build_parser, main


class TestParser:
    def test_all_ids_exposed(self):
        parser = build_parser()
        for exp in ALL_IDS:
            args = parser.parse_args([exp])
            assert args.experiment == exp

    def test_default_scale_small(self):
        args = build_parser().parse_args(["fig1"])
        assert args.scale == "small"

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig42"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig1", "--scale", "huge"])


class TestMain:
    def test_runs_one_experiment(self, capsys):
        assert main(["ablation-partition", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Ablation" in out
        assert "grid points" in out

    def test_writes_csv(self, tmp_path, capsys):
        assert main(["ablation-partition", "--scale", "small",
                     "--out", str(tmp_path)]) == 0
        files = list(tmp_path.glob("*.csv"))
        assert len(files) == 1
        assert "ablation-partition_small" in files[0].name
        header = files[0].read_text().splitlines()[0]
        assert "simulated_time_s" in header

    def test_table_experiment(self, capsys):
        assert main(["table1", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "empirical n-scaling" in out
