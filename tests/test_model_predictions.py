"""Tables 1-2 as executable predictions: the closed-form model must track
the simulator within a small factor across the grid."""

import pytest

from repro.bench.harness import KILO, run_point
from repro.bench.model import Prediction, predict
from repro.errors import ConfigurationError

GRID = [
    (64 * KILO, 4),
    (256 * KILO, 8),
    (512 * KILO, 16),
]

CONFIG = {
    "median_of_medians": "global_exchange",
    "bucket_based": "none",
    "randomized": "none",
    "fast_randomized": "none",
}


@pytest.mark.parametrize("algorithm", sorted(CONFIG))
@pytest.mark.parametrize("n,p", GRID)
def test_table1_prediction_tracks_simulator(algorithm, n, p):
    pred = predict(algorithm, n, p, table=1)
    measured = run_point(algorithm, n, p, distribution="random",
                         balancer=CONFIG[algorithm], trials=2)
    ratio = measured.simulated_time / pred.total
    assert 1 / 3 < ratio < 3, (
        f"{algorithm} n={n} p={p}: predicted {pred.total:.4f}s, "
        f"measured {measured.simulated_time:.4f}s"
    )


@pytest.mark.parametrize("algorithm", ["randomized", "median_of_medians"])
def test_table2_worstcase_prediction(algorithm):
    n, p = 512 * KILO, 16
    pred = predict(algorithm, n, p, table=2)
    measured = run_point(algorithm, n, p, distribution="sorted",
                         balancer="none", trials=2)
    ratio = measured.simulated_time / pred.total
    assert 1 / 3 < ratio < 3


class TestModelShape:
    def test_worst_case_exceeds_expected(self):
        for algo in ("randomized", "median_of_medians", "bucket_based"):
            assert predict(algo, 1 << 20, 16, table=2).total > predict(
                algo, 1 << 20, 16, table=1
            ).total

    def test_deterministic_predicted_slower(self):
        n, p = 1 << 20, 32
        assert (predict("median_of_medians", n, p).total
                > 5 * predict("randomized", n, p).total)

    def test_fast_randomized_comm_term_smaller_factor(self):
        # O(log log n) vs O(log n) iterations => smaller comm at huge n/p.
        n, p = 1 << 21, 128
        assert (predict("fast_randomized", n, p).comm
                < predict("randomized", n, p).comm * 5)

    def test_prediction_fields(self):
        pr = predict("randomized", 1 << 16, 8)
        assert isinstance(pr, Prediction)
        assert pr.total == pytest.approx(pr.compute + pr.comm)

    def test_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            predict("sort_based", 1024, 2)
        with pytest.raises(ConfigurationError):
            predict("randomized", 1024, 2, table=3)
