"""Edge-case grid: the degenerate shapes every query path must survive,
plus the regression pins for the two serving-tier bugfixes —

* out-of-range ranks are rejected BEFORE any SPMD launch (they used to
  burn a launch and surface as WorkerError), and
* in-place shard mutation changes the array fingerprint (the result
  cache used to serve pre-mutation answers).
"""

import numpy as np
import pytest

import repro
from repro.selection import STRATEGIES

# "auto" rides the same degenerate-shape legs: the planner must
# never crash where the algorithms themselves must not.
ALGORITHMS = sorted(STRATEGIES) + ["auto"]


def oracle(data, k):
    return float(np.sort(data.gather())[k - 1])


# ---------------------------------------------------------------------------
# Regression: out-of-range rank k must never reach a launch
# ---------------------------------------------------------------------------


class TestOutOfRangeRankPreLaunch:
    """A bad rank used to execute a full SPMD launch and come back as
    WorkerError; now every entry path raises ConfigurationError with
    ``Machine.launch_count`` unchanged."""

    @pytest.fixture
    def setup(self):
        machine = repro.Machine(n_procs=4)
        data = machine.generate(1000, seed=0)
        return machine, data

    @pytest.mark.parametrize("bad_k", [0, -1, 1001, 10**9])
    def test_fluent_select(self, setup, bad_k):
        machine, data = setup
        before = machine.launch_count
        with pytest.raises(repro.ConfigurationError, match="out of range"):
            data.select(bad_k)
        assert machine.launch_count == before

    def test_legacy_select_and_multi_select(self, setup):
        machine, data = setup
        before = machine.launch_count
        with pytest.raises(repro.ConfigurationError, match="out of range"):
            repro.select(data, 0)
        with pytest.raises(repro.ConfigurationError, match="out of range"):
            repro.multi_select(data, [1, 500, 1001])
        assert machine.launch_count == before

    def test_deferred_session_query(self, setup):
        machine, data = setup
        session = machine.session()
        before = machine.launch_count
        with pytest.raises(repro.ConfigurationError, match="out of range"):
            session.select(data, -5)
        with pytest.raises(repro.ConfigurationError, match="out of range"):
            session.multi_select(data, [500, 0])
        assert session.pending_count == 0, (
            "a rejected query must not linger in the pending queue"
        )
        assert machine.launch_count == before

    def test_sketch_prefilter_path(self, setup):
        machine, data = setup
        before = machine.launch_count
        with pytest.raises(repro.ConfigurationError, match="out of range"):
            data.select(1001, prefilter="sketch")
        assert machine.launch_count == before

    def test_non_integral_rank(self, setup):
        machine, data = setup
        before = machine.launch_count
        for bad in (1.5, "7", True):
            with pytest.raises(repro.ConfigurationError):
                data.select(bad)
        assert machine.launch_count == before

    def test_boundary_ranks_still_work(self, setup):
        _machine, data = setup
        assert data.select(1).value == oracle(data, 1)
        assert data.select(1000).value == oracle(data, 1000)


# ---------------------------------------------------------------------------
# Regression: in-place shard mutation must not serve stale cached answers
# ---------------------------------------------------------------------------


class TestMutationInvalidatesCache:
    def test_inplace_overwrite_changes_median(self):
        machine = repro.Machine(n_procs=4)
        data = machine.distribute(np.arange(1.0, 101.0))
        stale = data.median().value
        data.shards[0][:] = 999.0
        fresh = data.median()
        assert fresh.value != stale, (
            "post-mutation query served a stale cached answer"
        )
        assert fresh.value == oracle(data, (data.n + 1) // 2)

    def test_single_element_edit_at_probe_point(self):
        machine = repro.Machine(n_procs=2)
        data = machine.distribute(np.arange(1.0, 11.0))
        assert data.select(10).value == 10.0
        data.shards[1][-1] = 1000.0  # last element: probe-visible
        assert data.select(10).value == 1000.0

    def test_fingerprint_changes_on_mutation(self):
        machine = repro.Machine(n_procs=2)
        data = machine.distribute(np.arange(1.0, 101.0))
        fp = data.fingerprint
        data.shards[0][0] = -1.0
        assert data.fingerprint != fp

    def test_probe_invisible_mutation_needs_invalidate(self):
        # The documented limit of the 3-point probe: an interior write
        # that leaves first/middle/last of every shard intact still
        # requires an explicit invalidate().
        machine = repro.Machine(n_procs=1)
        data = machine.distribute(np.arange(1.0, 102.0))
        fp = data.fingerprint
        data.shards[0][1] = 500.0  # interior, probe-blind
        assert data.fingerprint == fp
        data.invalidate()
        assert data.fingerprint != fp

    def test_mutation_through_service(self):
        import asyncio

        from repro.serve import SelectionService

        machine = repro.Machine(n_procs=2)

        async def main():
            async with SelectionService(machine, window=0.001) as svc:
                data = svc.register("d", np.arange(1.0, 101.0))
                stale = (await svc.median("d")).value
                data.shards[0][:] = 999.0
                fresh = (await svc.median("d")).value
                return stale, fresh, oracle(data, (data.n + 1) // 2)

        stale, fresh, expected = asyncio.run(main())
        assert fresh != stale and fresh == expected


# ---------------------------------------------------------------------------
# Degenerate sizes: n=1, n < p, empty
# ---------------------------------------------------------------------------


class TestDegenerateSizes:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_single_element(self, algorithm):
        machine = repro.Machine(n_procs=4)
        data = machine.distribute(np.array([7.25]))
        rep = data.select(1, algorithm=algorithm)
        assert rep.value == 7.25
        assert data.median(algorithm=algorithm).value == 7.25

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_fewer_keys_than_processors(self, algorithm):
        machine = repro.Machine(n_procs=8)
        data = machine.distribute(np.array([5.0, 1.0, 3.0]))
        got = [data.select(k, algorithm=algorithm).value for k in (1, 2, 3)]
        assert got == [1.0, 3.0, 5.0]

    def test_single_element_quantiles(self):
        machine = repro.Machine(n_procs=4)
        data = machine.distribute(np.array([2.5]))
        reports = data.quantiles([0.25, 0.5, 1.0])
        assert [r.value for r in reports] == [2.5, 2.5, 2.5]

    def test_empty_array_queries_fail_clean(self):
        machine = repro.Machine(n_procs=4)
        data = machine.distribute(np.array([]))
        before = machine.launch_count
        with pytest.raises(repro.ConfigurationError):
            data.select(1)
        with pytest.raises(repro.ConfigurationError):
            data.median()
        assert data.multi_select([]).values == []
        assert machine.launch_count == before


# ---------------------------------------------------------------------------
# Streaming edges: empty stream, retire-all-then-query
# ---------------------------------------------------------------------------


class TestStreamingEdges:
    def test_empty_stream_query(self):
        machine = repro.Machine(n_procs=4)
        stream = machine.stream()
        before = machine.launch_count
        assert stream.n == 0
        with pytest.raises(repro.ConfigurationError):
            stream.select(1)
        with pytest.raises(repro.ConfigurationError):
            stream.median()
        assert machine.launch_count == before

    def test_retire_all_then_query(self):
        machine = repro.Machine(n_procs=4)
        stream = machine.stream(window=2, window_mode="sliding")
        stream.append(np.arange(0.0, 10.0))
        stream.append(np.arange(10.0, 20.0))
        assert stream.median().value is not None
        # Two more appends slide BOTH original batches out...
        stream.append(np.arange(100.0, 110.0))
        stream.append(np.arange(110.0, 120.0))
        assert stream.n == 20
        assert stream.select(1).value == 100.0
        # ...and retiring down to nothing must fail clean, not launch.
        empty = machine.stream()
        bid = empty.append(np.arange(4.0))
        empty.retire(bid)
        assert empty.n == 0
        before = machine.launch_count
        with pytest.raises(repro.ConfigurationError):
            empty.select(1)
        assert machine.launch_count == before


# ---------------------------------------------------------------------------
# Duplicate-heavy and duplicate-target queries
# ---------------------------------------------------------------------------


class TestDuplicatesAndQuantiles:
    def test_all_equal_keys_under_sketch_prefilter(self):
        machine = repro.Machine(n_procs=4)
        data = machine.distribute(np.full(5000, 3.5))
        plain = data.select(2500)
        sketchy = data.select(2500, prefilter="sketch")
        assert plain.value == sketchy.value == 3.5

    def test_quantile_bounds(self):
        machine = repro.Machine(n_procs=4)
        data = machine.generate(1000, seed=1)
        before = machine.launch_count
        for bad_q in (0.0, -0.1, 1.0001):
            with pytest.raises(repro.ConfigurationError, match="outside"):
                data.quantiles([bad_q])
        assert machine.launch_count == before
        lo, hi = data.quantiles([1e-9, 1.0])
        assert lo.value == oracle(data, 1)
        assert hi.value == oracle(data, 1000)

    def test_duplicate_quantile_targets(self):
        machine = repro.Machine(n_procs=4)
        data = machine.generate(1000, seed=2)
        reports = data.quantiles([0.5, 0.5, 0.5])
        assert len({r.value for r in reports}) == 1

    def test_duplicate_multi_select_targets(self):
        machine = repro.Machine(n_procs=4)
        data = machine.generate(1000, seed=3)
        rep = data.multi_select([500, 7, 500, 7, 500])
        assert rep.ks == [500, 7, 500, 7, 500]
        assert rep.values[0] == rep.values[2] == rep.values[4]
        assert rep.values[1] == rep.values[3] == oracle(data, 7)
