"""Unit tests for tagged point-to-point mailboxes."""

import threading

import pytest

from repro.errors import CommunicationError, WorkerAborted
from repro.machine.channels import MessageBoard


class TestDelivery:
    def test_fifo_per_source_and_tag(self):
        board = MessageBoard(2)
        board.send(0, 1, "t", "a")
        board.send(0, 1, "t", "b")
        mb = board.mailbox(1)
        assert mb.recv(0, "t", timeout=1) == "a"
        assert mb.recv(0, "t", timeout=1) == "b"

    def test_tags_are_independent(self):
        board = MessageBoard(2)
        board.send(0, 1, "x", 1)
        board.send(0, 1, "y", 2)
        mb = board.mailbox(1)
        assert mb.recv(0, "y", timeout=1) == 2
        assert mb.recv(0, "x", timeout=1) == 1

    def test_sources_are_independent(self):
        board = MessageBoard(3)
        board.send(0, 2, 0, "from0")
        board.send(1, 2, 0, "from1")
        mb = board.mailbox(2)
        assert mb.recv(1, 0, timeout=1) == "from1"
        assert mb.recv(0, 0, timeout=1) == "from0"

    def test_blocking_recv_wakes_on_send(self):
        board = MessageBoard(2)
        got = []

        def receiver():
            got.append(board.mailbox(1).recv(0, 7, timeout=5))

        t = threading.Thread(target=receiver)
        t.start()
        board.send(0, 1, 7, "late")
        t.join(timeout=5)
        assert got == ["late"]

    def test_recv_timeout(self):
        board = MessageBoard(2)
        with pytest.raises(TimeoutError):
            board.mailbox(0).recv(1, 0, timeout=0.05)


class TestValidation:
    def test_send_out_of_range_dest(self):
        board = MessageBoard(2)
        with pytest.raises(CommunicationError):
            board.send(0, 5, 0, "x")

    def test_send_out_of_range_source(self):
        board = MessageBoard(2)
        with pytest.raises(CommunicationError):
            board.send(-1, 1, 0, "x")

    def test_drain_check_clean(self):
        board = MessageBoard(2)
        board.send(0, 1, 0, "x")
        board.mailbox(1).recv(0, 0, timeout=1)
        board.drain_check()  # no raise

    def test_drain_check_detects_unconsumed(self):
        board = MessageBoard(2)
        board.send(0, 1, 0, "orphan")
        with pytest.raises(CommunicationError, match="undelivered"):
            board.drain_check()


class TestAbort:
    def test_abort_wakes_blocked_recv(self):
        board = MessageBoard(2)
        errors = []

        def receiver():
            try:
                board.mailbox(1).recv(0, 0, timeout=10)
            except WorkerAborted:
                errors.append(True)

        t = threading.Thread(target=receiver)
        t.start()
        board.abort()
        t.join(timeout=5)
        assert errors == [True]

    def test_abort_drops_late_sends(self):
        board = MessageBoard(2)
        board.abort()
        board.send(0, 1, 0, "dropped")  # silently discarded
        assert board.mailbox(1).pending() == 0
