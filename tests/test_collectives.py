"""Collectives: semantic correctness + the paper's exact cost formulas."""

import operator

import numpy as np
import pytest

from repro.errors import ConfigurationError, RankMismatchError, WorkerError
from repro.machine import CostModel, payload_words, run_spmd
from repro.machine.cost_model import ComputeCosts

# A cost model with easy numbers for hand-checking formulas.
EASY = CostModel(
    tau=1.0,
    mu=0.01,
    compute=ComputeCosts(
        partition=0, select_deterministic=0, select_randomized=0,
        sort_per_cmp=0, scan=0, binary_search_step=0, bucket_level=0,
        rng_draw=0,
    ),
    name="easy",
)


class NegativeSized:
    """Module-level so it pickles: queue backends ship deposits across
    processes, and the point of the bad-sizer test is the *pricing* error,
    not a transport one."""

    def __sim_words__(self):
        return -3


class TestPayloadWords:
    def test_none_is_zero(self):
        assert payload_words(None) == 0.0

    def test_scalar_is_one(self):
        assert payload_words(3) == 1.0
        assert payload_words(2.5) == 1.0
        assert payload_words(np.float64(1.0)) == 1.0

    def test_array_counts_8byte_words(self):
        assert payload_words(np.zeros(10, dtype=np.float64)) == 10.0
        assert payload_words(np.zeros(10, dtype=np.int32)) == 5.0

    def test_sequence_sums(self):
        assert payload_words([1, 2.0, np.zeros(3)]) == 5.0

    def test_bytes(self):
        assert payload_words(b"x" * 16) == 2.0

    def test_sim_words_sizer_consulted(self):
        class Sized:
            def __sim_words__(self):
                return 7

        assert payload_words(Sized()) == 7.0
        assert payload_words([Sized(), Sized()]) == 14.0

    @pytest.mark.parametrize("bad", [-1, -0.5, float("nan"), float("inf")])
    def test_sim_words_rejects_bad_numbers(self, bad):
        class Sized:
            def __init__(self, v):
                self._v = v

            def __sim_words__(self):
                return self._v

        with pytest.raises(ConfigurationError, match="__sim_words__"):
            payload_words(Sized(bad))

    @pytest.mark.parametrize("bad", ["ten", None, object(), [1, 2]])
    def test_sim_words_rejects_non_numeric(self, bad):
        class Sized:
            def __init__(self, v):
                self._v = v

            def __sim_words__(self):
                return self._v

        with pytest.raises(ConfigurationError, match="__sim_words__"):
            payload_words(Sized(bad))

    def test_bad_sizer_surfaces_from_inside_a_collective(self):
        """A mispriced payload aborts the launch with a clear error
        instead of silently corrupting every simulated time after it."""

        def prog(ctx):
            ctx.comm.combine(NegativeSized(), lambda a, b: a)

        with pytest.raises(WorkerError) as ei:
            run_spmd(prog, 2)
        assert isinstance(ei.value.cause, ConfigurationError)


class TestSemantics:
    def test_broadcast_delivers_roots_value(self):
        def prog(ctx):
            return ctx.comm.broadcast("hello" if ctx.rank == 2 else None, root=2)

        res = run_spmd(prog, 5)
        assert res.values == ["hello"] * 5

    def test_combine_allreduce(self):
        def prog(ctx):
            return ctx.comm.combine(ctx.rank + 1, operator.add)

        res = run_spmd(prog, 4)
        assert res.values == [10, 10, 10, 10]

    def test_combine_with_custom_op(self):
        def prog(ctx):
            return ctx.comm.combine(ctx.rank, max)

        assert run_spmd(prog, 6).values == [5] * 6

    def test_prefix_inclusive(self):
        def prog(ctx):
            return ctx.comm.prefix_sum(ctx.rank + 1)

        assert run_spmd(prog, 4).values == [1, 3, 6, 10]

    def test_prefix_exclusive(self):
        def prog(ctx):
            return ctx.comm.exscan_sum(ctx.rank + 1)

        assert run_spmd(prog, 4).values == [0, 1, 3, 6]

    def test_gather_root_only(self):
        def prog(ctx):
            return ctx.comm.gather(ctx.rank * 2, root=1)

        res = run_spmd(prog, 3)
        assert res.values[1] == [0, 2, 4]
        assert res.values[0] is None and res.values[2] is None

    def test_global_concat_everywhere(self):
        def prog(ctx):
            return ctx.comm.global_concat(chr(ord("a") + ctx.rank))

        assert run_spmd(prog, 3).values == [["a", "b", "c"]] * 3

    def test_alltoallv_transposes(self):
        def prog(ctx):
            sends = [np.array([ctx.rank * 10 + d]) for d in range(ctx.size)]
            recv = ctx.comm.alltoallv(sends)
            return [int(r[0]) for r in recv]

        res = run_spmd(prog, 4)
        for d in range(4):
            assert res.values[d] == [s * 10 + d for s in range(4)]

    def test_alltoallv_none_slots(self):
        def prog(ctx):
            sends = [None] * ctx.size
            if ctx.rank == 0:
                sends[1] = np.arange(3)
            recv = ctx.comm.alltoallv(sends)
            return [None if r is None else r.sum() for r in recv]

        res = run_spmd(prog, 3)
        assert res.values[1][0] == 3
        assert res.values[2] == [None, None, None]

    def test_gather_concat_array(self):
        def prog(ctx):
            arr = np.full(ctx.rank, ctx.rank, dtype=np.int64)
            g = ctx.comm.gather_concat_array(arr)
            return None if g is None else g.tolist()

        res = run_spmd(prog, 4)
        assert res.values[0] == [1, 2, 2, 3, 3, 3]

    def test_pairwise_exchange_swaps(self):
        def prog(ctx):
            partner = ctx.rank ^ 1
            return ctx.comm.pairwise_exchange(partner, f"from{ctx.rank}")

        res = run_spmd(prog, 4)
        assert res.values == ["from1", "from0", "from3", "from2"]

    def test_pairwise_exchange_with_idle_rank(self):
        def prog(ctx):
            if ctx.rank == 2:
                return ctx.comm.pairwise_exchange(None, None)
            partner = ctx.rank ^ 1
            return ctx.comm.pairwise_exchange(partner, ctx.rank)

        res = run_spmd(prog, 3)
        assert res.values == [1, 0, None]


class TestCostFormulas:
    """Each primitive advances the clock by exactly the Section 2.2 cost."""

    def run_time(self, prog, p):
        return run_spmd(prog, p, cost_model=EASY).simulated_time

    def test_broadcast_cost(self):
        # (tau + mu*m) * ceil(log2 p); m = 10 words, p = 8 -> 3 rounds.
        def prog(ctx):
            ctx.comm.broadcast(np.zeros(10) if ctx.rank == 0 else None, root=0)

        assert self.run_time(prog, 8) == pytest.approx((1.0 + 0.01 * 10) * 3)

    def test_combine_cost(self):
        def prog(ctx):
            ctx.comm.combine(1.0)

        assert self.run_time(prog, 8) == pytest.approx((1.0 + 0.01) * 3)

    def test_prefix_cost(self):
        def prog(ctx):
            ctx.comm.prefix_sum(1)

        assert self.run_time(prog, 4) == pytest.approx((1.0 + 0.01) * 2)

    def test_gather_cost(self):
        # tau*ceil(log2 p) + mu*m*(p-1); m = 5 words, p = 4.
        def prog(ctx):
            ctx.comm.gather(np.zeros(5), root=0)

        assert self.run_time(prog, 4) == pytest.approx(1.0 * 2 + 0.01 * 5 * 3)

    def test_global_concat_cost(self):
        def prog(ctx):
            ctx.comm.global_concat(np.zeros(5))

        assert self.run_time(prog, 4) == pytest.approx(1.0 * 2 + 0.01 * 5 * 3)

    def test_alltoallv_cost_uses_max_traffic(self):
        # rank 0 sends 10 words to each of 3 peers (t_out = 30); everyone
        # else sends nothing. t = 30; max_msgs = 3.
        def prog(ctx):
            sends = [None] * ctx.size
            if ctx.rank == 0:
                for d in range(1, ctx.size):
                    sends[d] = np.zeros(10)
            ctx.comm.alltoallv(sends)

        assert self.run_time(prog, 4) == pytest.approx(1.0 * 3 + 2 * 0.01 * 30)

    def test_alltoallv_self_send_is_free(self):
        def prog(ctx):
            sends = [None] * ctx.size
            sends[ctx.rank] = np.zeros(100)  # local copy only
            ctx.comm.alltoallv(sends)

        assert self.run_time(prog, 4) == pytest.approx(0.0)

    def test_pairwise_round_costs_slowest_pair(self):
        # Pair (0,1) swaps 100 words vs pair (2,3) swaps 1 word:
        # the round costs tau + mu*100 for everyone.
        def prog(ctx):
            partner = ctx.rank ^ 1
            payload = np.zeros(100) if ctx.rank < 2 else np.zeros(1)
            ctx.comm.pairwise_exchange(partner, payload)

        assert self.run_time(prog, 4) == pytest.approx(1.0 + 0.01 * 100)

    def test_single_rank_collectives_are_free(self):
        def prog(ctx):
            ctx.comm.broadcast("x", root=0)
            ctx.comm.combine(1)
            ctx.comm.gather(1)

        assert self.run_time(prog, 1) == pytest.approx(0.0)

    def test_clocks_synchronise_to_slowest(self):
        # Rank 1 computes 10s before the barrier; after one collective all
        # clocks read >= 10s + cost.
        def prog(ctx):
            if ctx.rank == 1:
                ctx.charge_compute(10.0)
            ctx.comm.combine(1)
            return ctx.clock.now

        res = run_spmd(prog, 4, cost_model=EASY)
        expect = 10.0 + (1.0 + 0.01) * 2
        assert all(v == pytest.approx(expect) for v in res.values)


class TestMismatchDetection:
    def test_diverged_collectives_raise(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.combine(1)
            else:
                ctx.comm.broadcast(1, root=0)

        with pytest.raises(WorkerError) as ei:
            run_spmd(prog, 2)
        assert isinstance(ei.value.cause, RankMismatchError)

    def test_inconsistent_pairing_raises(self):
        def prog(ctx):
            # 0 pairs with 1, but 1 pairs with 2: invalid.
            partner = {0: 1, 1: 2, 2: 0}[ctx.rank]
            ctx.comm.pairwise_exchange(partner, ctx.rank)

        with pytest.raises(WorkerError):
            run_spmd(prog, 3)

    def test_alltoallv_wrong_slot_count(self):
        def prog(ctx):
            ctx.comm.alltoallv([None])  # wrong length

        with pytest.raises(WorkerError) as ei:
            run_spmd(prog, 3)
        assert isinstance(ei.value.cause, RankMismatchError)


class TestDeterminism:
    def test_same_program_same_simulated_time(self):
        def prog(ctx):
            rng = np.random.default_rng(ctx.rank)
            data = rng.random(100)
            ctx.charge_compute(float(data.sum()) * 1e-6)
            total = ctx.comm.combine(float(data.sum()))
            ctx.comm.gather(np.sort(data))
            return total

        r1 = run_spmd(prog, 4)
        r2 = run_spmd(prog, 4)
        assert r1.values == r2.values
        assert r1.clocks == r2.clocks
