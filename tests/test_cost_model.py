"""Unit tests for the two-level cost model (repro.machine.cost_model)."""

import dataclasses
import math

import pytest

from repro.errors import ConfigurationError
from repro.machine.cost_model import CM5, ComputeCosts, CostModel, cm5, zero_cost_model


class TestComputeCosts:
    def test_defaults_are_positive(self):
        c = ComputeCosts()
        for f in dataclasses.fields(c):
            assert getattr(c, f.name) > 0

    def test_deterministic_constant_dominates_partition(self):
        # The calibration that drives the paper's order-of-magnitude claim.
        c = ComputeCosts()
        assert c.select_deterministic / c.partition > 10

    @pytest.mark.parametrize("field", [f.name for f in dataclasses.fields(ComputeCosts)])
    def test_rejects_negative(self, field):
        with pytest.raises(ConfigurationError):
            ComputeCosts(**{field: -1e-9}).validate()

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ConfigurationError):
            ComputeCosts(partition=bad).validate()


class TestCostModel:
    def test_cm5_preset_identity(self):
        assert CM5.name == "CM5"
        assert cm5() == CM5
        assert CM5.tau > 0 and CM5.mu > 0

    def test_msg_time_linear_in_words(self):
        m = CostModel(tau=1e-4, mu=1e-6)
        assert m.msg_time(0) == pytest.approx(1e-4)
        assert m.msg_time(100) == pytest.approx(1e-4 + 100e-6)

    def test_msg_time_clamps_negative_words(self):
        m = CostModel(tau=1e-4, mu=1e-6)
        assert m.msg_time(-5) == pytest.approx(1e-4)

    @pytest.mark.parametrize(
        "p,expect", [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (128, 7)]
    )
    def test_log2p(self, p, expect):
        assert CM5.log2p(p) == expect

    def test_log2p_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            CM5.log2p(0)

    def test_rejects_negative_tau(self):
        with pytest.raises(ConfigurationError):
            CostModel(tau=-1.0)

    def test_rejects_nan_mu(self):
        with pytest.raises(ConfigurationError):
            CostModel(mu=math.nan)

    def test_replace_top_level_field(self):
        m = CM5.replace(tau=42.0)
        assert m.tau == 42.0
        assert m.mu == CM5.mu
        assert CM5.tau != 42.0  # original untouched

    def test_replace_compute_field_merges(self):
        m = CM5.replace(partition=7e-9)
        assert m.compute.partition == 7e-9
        assert m.compute.scan == CM5.compute.scan

    def test_replace_mixed(self):
        m = CM5.replace(mu=0.0, rng_draw=0.0)
        assert m.mu == 0.0 and m.compute.rng_draw == 0.0


class TestZeroModel:
    def test_everything_free(self):
        z = zero_cost_model()
        assert z.tau == 0 and z.mu == 0
        for f in dataclasses.fields(ComputeCosts):
            assert getattr(z.compute, f.name) == 0.0

    def test_msg_time_zero(self):
        assert zero_cost_model().msg_time(12345) == 0.0
