"""Parallel sample sort and global-rank lookup."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, WorkerError
from repro.kernels import CostedKernels
from repro.machine import run_spmd
from repro.psort import element_at_global_rank, is_globally_sorted, sample_sort


def run_sort(shards, p=None):
    p = p if p is not None else len(shards)

    def prog(ctx, shard):
        return sample_sort(ctx, CostedKernels(ctx), shard)

    return run_spmd(prog, p, rank_args=[(s,) for s in shards]).values


class TestSampleSort:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_sorts_random_data(self, p):
        rng = np.random.default_rng(p)
        shards = [rng.random(100) for _ in range(p)]
        runs = run_sort(shards)
        assert is_globally_sorted(runs)
        merged = np.concatenate([r for r in runs if r.size])
        assert np.array_equal(merged, np.sort(np.concatenate(shards)))

    def test_sorted_input(self):
        shards = [np.arange(r * 25, (r + 1) * 25, dtype=float) for r in range(4)]
        runs = run_sort(shards)
        assert is_globally_sorted(runs)

    def test_reverse_distributed_input(self):
        shards = [np.arange(100 - r * 25, 75 - r * 25, -1, dtype=float)
                  for r in range(4)]
        runs = run_sort(shards)
        assert is_globally_sorted(runs)
        assert sum(r.size for r in runs) == 100

    def test_duplicates(self):
        shards = [np.full(50, 1.0), np.full(50, 2.0), np.full(50, 1.0)]
        runs = run_sort(shards)
        assert is_globally_sorted(runs)
        assert sum(r.size for r in runs) == 150

    def test_empty_shards_mixed(self):
        shards = [np.array([]), np.arange(10.0), np.array([]), np.arange(5.0)]
        runs = run_sort(shards)
        assert is_globally_sorted(runs)
        assert sum(r.size for r in runs) == 15

    def test_all_empty(self):
        runs = run_sort([np.array([])] * 3)
        assert all(r.size == 0 for r in runs)

    def test_uneven_sizes(self):
        rng = np.random.default_rng(0)
        shards = [rng.random(s) for s in [200, 1, 0, 37]]
        runs = run_sort(shards)
        assert is_globally_sorted(runs)
        merged = np.concatenate([r for r in runs if r.size])
        assert np.array_equal(merged, np.sort(np.concatenate(shards)))


class TestElementAtGlobalRank:
    def test_matches_sorted_oracle(self):
        rng = np.random.default_rng(1)
        shards = [rng.random(40) for _ in range(4)]
        full_sorted = np.sort(np.concatenate(shards))

        def prog(ctx, shard):
            run = sample_sort(ctx, CostedKernels(ctx), shard)
            return [element_at_global_rank(ctx, run, r) for r in (1, 80, 160)]

        res = run_spmd(prog, 4, rank_args=[(s,) for s in shards])
        for vals in res.values:
            assert vals == [full_sorted[0], full_sorted[79], full_sorted[159]]

    def test_out_of_range_rank(self):
        def prog(ctx, shard):
            run = sample_sort(ctx, CostedKernels(ctx), shard)
            return element_at_global_rank(ctx, run, 999)

        with pytest.raises(WorkerError) as ei:
            run_spmd(prog, 2, rank_args=[(np.arange(3.0),), (np.arange(3.0),)])
        assert isinstance(ei.value.cause, ConfigurationError)


class TestIsGloballySorted:
    def test_accepts_sorted(self):
        assert is_globally_sorted([np.array([1, 2]), np.array([3, 4])])

    def test_rejects_overlap(self):
        assert not is_globally_sorted([np.array([1, 5]), np.array([3, 9])])

    def test_rejects_local_disorder(self):
        assert not is_globally_sorted([np.array([2, 1])])

    def test_ignores_empty_runs(self):
        assert is_globally_sorted([np.array([]), np.array([1]), np.array([])])


@given(st.lists(st.lists(st.integers(-100, 100), max_size=60), min_size=1,
                max_size=6))
def test_property_sample_sort_is_a_sort(shard_lists):
    shards = [np.array(s, dtype=np.int64) for s in shard_lists]
    runs = run_sort(shards, p=len(shards))
    assert is_globally_sorted(runs)
    live = [r for r in runs if r.size]
    merged = np.concatenate(live) if live else np.array([])
    inp = [np.asarray(s) for s in shards if np.asarray(s).size]
    expect = np.sort(np.concatenate(inp)) if inp else np.array([])
    assert np.array_equal(merged, expect)
