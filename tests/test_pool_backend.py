"""The persistent ``pool`` backend's own contract: fork once and serve
many launches, pin shards in shared memory, survive worker death (the
generation retires, the next launch re-forks), and fall back to one-shot
inherited forks for closure programs.

Programs here are module-level on purpose: the pool ships jobs to
already-running workers by pickling, which closures cannot survive."""

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

import repro
from repro.errors import CommunicationError, WorkerError
from repro.machine.backends import BACKENDS

P = 4


def _pool_workers() -> list:
    return [
        pr for pr in multiprocessing.active_children()
        if pr.name.startswith("repro-pool-")
    ]


def _fresh_pool_machine(join_timeout=None) -> repro.Machine:
    """A pool-backed machine with no live generations or stale pins."""
    BACKENDS["pool"].shutdown()
    machine = repro.Machine(n_procs=P, backend="pool")
    if join_timeout is not None:
        machine.runtime.join_timeout = join_timeout
    return machine


def _sum_shard(ctx, shard):
    total = ctx.comm.allreduce_sum(float(np.sum(shard)))
    return total


def _kill_rank_one(ctx, shard):
    if ctx.rank == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return ctx.comm.allreduce_sum(int(shard.size))


class TestForkOnceServeMany:
    def test_fork_count_stays_flat_across_launches(self):
        machine = _fresh_pool_machine()
        data = machine.generate(2000, seed=0)
        rank_args = [(s,) for s in data.shards]
        first = machine.run(_sum_shard, rank_args=rank_args)
        forks_after_first = machine.fork_count
        for _ in range(5):
            again = machine.run(_sum_shard, rank_args=rank_args)
            assert again.values == first.values
        assert machine.fork_count == forks_after_first, (
            "repeated launches over pinned shards must not fork"
        )
        assert machine.launch_count == 6

    def test_new_array_refetches_then_reuses(self):
        machine = _fresh_pool_machine()
        a = machine.generate(1000, seed=1)
        machine.run(_sum_shard, rank_args=[(s,) for s in a.shards])
        baseline = machine.fork_count
        # Unseen arrays are not in the live generation's pin table: the
        # pool re-forks once, then serves both arrays without forking.
        b = machine.generate(1000, seed=2)
        machine.run(_sum_shard, rank_args=[(s,) for s in b.shards])
        assert machine.fork_count == baseline + 1
        machine.run(_sum_shard, rank_args=[(s,) for s in a.shards])
        machine.run(_sum_shard, rank_args=[(s,) for s in b.shards])
        assert machine.fork_count == baseline + 1

    def test_in_place_mutation_is_not_served_stale(self):
        machine = _fresh_pool_machine()
        shards = [np.arange(10.0) + r for r in range(P)]
        first = machine.run(_sum_shard, rank_args=[(s,) for s in shards])
        shards[0][...] = 1000.0
        second = machine.run(_sum_shard, rank_args=[(s,) for s in shards])
        expected = float(sum(float(s.sum()) for s in shards))
        assert second.values[0] == expected
        assert second.values[0] != first.values[0]

    def test_closure_program_falls_back_per_launch(self):
        machine = _fresh_pool_machine()
        data = machine.generate(800, seed=3)
        offset = 2.5

        def prog(ctx, shard):  # closure: cannot reach live workers
            return float(np.sum(shard)) + offset

        before = machine.fork_count
        res = machine.run(prog, rank_args=[(s,) for s in data.shards])
        assert res.backend == "pool"
        assert machine.fork_count == before + 1
        res2 = machine.run(prog, rank_args=[(s,) for s in data.shards])
        assert res2.values == res.values
        assert machine.fork_count == before + 2

    def test_single_rank_takes_inline_path(self):
        BACKENDS["pool"].shutdown()
        machine = repro.Machine(n_procs=1, backend="pool")
        # fork_count is cumulative on the shared backend: assert the delta.
        before = machine.fork_count
        data = machine.distribute(np.array([4.0, 2.0, 9.0]))
        rep = data.select(2)
        assert rep.value == 4.0
        assert rep.backend == "pool"
        assert machine.fork_count == before


class TestWorkerDeath:
    def test_sigkilled_worker_surfaces_and_pool_recovers(self):
        machine = _fresh_pool_machine(join_timeout=30.0)
        data = machine.generate(1200, seed=4)
        rank_args = [(s,) for s in data.shards]
        machine.run(_sum_shard, rank_args=rank_args)  # warm generation
        with pytest.raises(WorkerError) as ei:
            machine.run(_kill_rank_one, rank_args=rank_args)
        assert ei.value.rank == 1
        assert ei.value.__cause__ is ei.value.cause
        assert "died with exit code" in str(ei.value.cause)
        # The generation retired; the next launch re-forks and answers.
        forks = machine.fork_count
        again = machine.run(_sum_shard, rank_args=rank_args)
        assert machine.fork_count == forks + 1
        expected = float(sum(float(s.sum()) for s in data.shards))
        assert again.values[0] == expected

    def test_externally_killed_idle_worker_triggers_refork(self):
        machine = _fresh_pool_machine()
        data = machine.generate(900, seed=5)
        rank_args = [(s,) for s in data.shards]
        machine.run(_sum_shard, rank_args=rank_args)
        victim = _pool_workers()[0]
        victim.terminate()
        victim.join(timeout=5.0)
        forks = machine.fork_count
        res = machine.run(_sum_shard, rank_args=rank_args)
        assert machine.fork_count == forks + 1
        expected = float(sum(float(s.sum()) for s in data.shards))
        assert res.values[0] == expected


def _combine_unpicklable(ctx, shard):
    class Local:  # local classes cannot pickle, so cannot cross processes
        pass

    return ctx.comm.combine(Local(), lambda a, b: a)


class TestUnpicklablePayloads:
    """Deposits are pickled eagerly in the sending rank. Without that,
    ``multiprocessing``'s queue feeder thread drops the message silently
    and every peer stalls until the launch timeout."""

    @pytest.mark.parametrize("backend", ["process", "pool"])
    def test_fails_fast_with_clear_cause(self, backend):
        if backend == "pool":
            machine = _fresh_pool_machine()
        else:
            machine = repro.Machine(n_procs=P, backend="process")
        data = machine.generate(400, seed=8)
        rank_args = [(s,) for s in data.shards]
        t0 = time.monotonic()
        with pytest.raises(WorkerError) as ei:
            machine.run(_combine_unpicklable, rank_args=rank_args)
        assert time.monotonic() - t0 < 30.0, (
            "unpicklable payload must abort the launch, not stall it"
        )
        assert isinstance(ei.value.cause, CommunicationError)
        assert "cannot cross the process boundary" in str(ei.value.cause)
        # The failure is clean: the next launch answers normally.
        res = machine.run(_sum_shard, rank_args=rank_args)
        expected = float(sum(float(s.sum()) for s in data.shards))
        assert res.values[0] == expected


class TestLifecycle:
    def test_shutdown_reaps_workers_and_pool_stays_usable(self):
        machine = _fresh_pool_machine()
        data = machine.generate(700, seed=6)
        rank_args = [(s,) for s in data.shards]
        machine.run(_sum_shard, rank_args=rank_args)
        assert len(_pool_workers()) == P
        BACKENDS["pool"].shutdown()
        deadline = time.monotonic() + 5.0
        while _pool_workers() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not _pool_workers(), "shutdown must reap every worker"
        forks = machine.fork_count
        res = machine.run(_sum_shard, rank_args=rank_args)
        assert machine.fork_count == forks + 1
        assert len(res.values) == P

    def test_fork_count_zero_for_stateless_backends(self):
        machine = repro.Machine(n_procs=P, backend="threaded")
        data = machine.generate(500, seed=7)
        data.select(3)
        assert machine.fork_count == 0
