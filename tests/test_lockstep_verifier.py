"""Runtime lockstep verifier (``REPRO_VERIFY=lockstep``).

The static analyzer (``repro.lint`` RPR1xx) catches rank-dependent
collective *structure* it can see; the verifier is the dynamic
complement: every rank's deposit token carries (op, call site, sequence
number, history CRC), so a divergence the linter cannot prove — or code
that suppressed a finding wrongly — collides at the rendezvous with a
diagnostic naming the first divergent rank and both call sites.
"""

import numpy as np
import pytest

from repro.errors import RankMismatchError, WorkerError
from repro.machine import run_spmd
from repro.machine.collectives import LockstepVerifier


@pytest.fixture
def lockstep(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "lockstep")


def _sum_program(ctx, base):
    rng = np.random.default_rng((1234, ctx.rank))
    shard = rng.random(257) + base
    total = ctx.comm.combine(float(shard.sum()))
    order = ctx.comm.prefix_sum(int(shard.size))
    pieces = ctx.comm.global_concat(float(shard[0]))
    ctx.comm.barrier()
    return total, order, tuple(pieces)


def _divergent_op_program(ctx):  # repro: noqa[RPR101]
    if ctx.rank == 0:
        ctx.comm.combine(1)
    else:
        ctx.comm.barrier()


def _divergent_site_program(ctx):  # repro: noqa[RPR101]
    # Same primitive on every rank, but from two different program points:
    # invisible to the plain op-name check, caught by the verifier.
    if ctx.rank == 2:
        ctx.comm.barrier()
    else:
        ctx.comm.barrier()


def _pairwise_asymmetric_program(ctx):
    # Partnered and partnerless ranks reach pairwise_exchange through
    # different branches; the verifier's site exemption must allow it.
    if ctx.rank < 2:  # repro: noqa[RPR101]
        partner = 1 - ctx.rank
        got = ctx.comm.pairwise_exchange(partner, float(ctx.rank))
    else:
        got = ctx.comm.pairwise_exchange(None, None)
    return ctx.comm.combine(0.0 if got is None else got)


class TestVerifierCatchesDivergence:
    def test_divergent_op_names_rank_and_sites(self, lockstep):
        with pytest.raises(WorkerError) as ei:
            run_spmd(_divergent_op_program, 4, backend="threaded")
        cause = ei.value.cause
        assert isinstance(cause, RankMismatchError)
        msg = str(cause)
        assert "lockstep verification failed" in msg
        assert "rank 0" in msg
        assert "combine" in msg and "barrier" in msg
        assert "test_lockstep_verifier.py" in msg
        assert "divergent ranks: [0]" in msg

    def test_site_divergence_invisible_without_verifier(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        # Op names agree, so the plain op-name check lets this pass.
        assert run_spmd(_divergent_site_program, 4, backend="threaded").values == [None] * 4

    def test_same_op_different_call_site_is_caught(self, lockstep):
        with pytest.raises(WorkerError) as ei:
            run_spmd(_divergent_site_program, 4, backend="threaded")
        cause = ei.value.cause
        assert isinstance(cause, RankMismatchError)
        msg = str(cause)
        assert "rank 2" in msg
        assert msg.count("barrier") == 2
        assert "divergent ranks: [2]" in msg

    def test_first_collective_has_sequence_zero(self, lockstep):
        with pytest.raises(WorkerError) as ei:
            run_spmd(_divergent_op_program, 2, backend="threaded")
        assert "collective #0" in str(ei.value.cause)


class TestVerifierStaysSilentOnCleanRuns:
    def test_clean_program_runs_and_matches_unverified(self, monkeypatch):
        baseline = run_spmd(_sum_program, 4, args=(0.5,), backend="threaded")
        monkeypatch.setenv("REPRO_VERIFY", "lockstep")
        verified = run_spmd(_sum_program, 4, args=(0.5,), backend="threaded")
        # Values AND simulated times are bit-identical: the verifier only
        # changes the token on the rendezvous board, never the pricing.
        assert verified.values == baseline.values
        assert verified.clocks == baseline.clocks

    def test_threaded_backend_clean(self, lockstep):
        res = run_spmd(_sum_program, 4, args=(0.25,), backend="threaded")
        totals = [v[0] for v in res.values]
        concats = [v[2] for v in res.values]
        assert totals[0] == totals[3]
        assert concats[0] == concats[3]

    def test_pairwise_site_exemption(self, lockstep):
        res = run_spmd(_pairwise_asymmetric_program, 4, backend="threaded")
        # Rank 0 receives 1.0, rank 1 receives 0.0, spectators None -> 0.
        assert res.values == [1.0] * 4


class TestVerifierUnit:
    def test_annotate_token_shape_and_history(self):
        v = LockstepVerifier(2)
        t0, t1 = (v.annotate(r, "combine") for r in range(2))
        assert t0 == t1  # same op, same site line, same seq, same history
        op, site, seq, hist = t0.split("|")
        assert op == "combine"
        assert "tests/test_lockstep_verifier.py:" in site
        assert seq == "0"
        assert len(hist) == 8
        # Histories chain: a later identical op yields a different token.
        assert v.annotate(0, "combine").split("|")[3] != hist

    def test_pairwise_exempt_site(self):
        v = LockstepVerifier(2)
        token = v.annotate(0, "pairwise_exchange")
        assert token.split("|")[1] == "*"

    def test_mismatch_error_majority_vs_first_divergent(self):
        v = LockstepVerifier(3)
        err = v.mismatch_error(
            [
                "barrier|a/x.py:10|4|deadbeef",
                "combine|a/y.py:20|4|deadbeef",
                "barrier|a/x.py:10|4|deadbeef",
            ]
        )
        msg = str(err)
        assert "collective #4" in msg
        assert "rank 1" in msg
        assert "`combine` from a/y.py:20" in msg
        assert "`barrier` from a/x.py:10" in msg
