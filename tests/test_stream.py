"""StreamingArray + sketch-accelerated refinement: the subsystem claims.

* streaming/batch equivalence: ``append(a); append(b)`` is bit-identical
  (shards, fingerprint, answers, reports) to one ``append(a + b)``, on
  every backend;
* append-aware serving: re-queries after no append are zero-launch cache
  hits, appends invalidate precisely;
* windows: sliding/tumbling retirement keeps exactly the configured
  batches;
* refinement: ``prefilter="sketch"`` returns bit-identical values to the
  plain path for every algorithm x distribution on serial and threaded
  backends, with full launch-evidence identity across backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import DISTRIBUTIONS, Machine, SelectionPlan, StreamingArray
from repro.errors import ConfigurationError
from repro.selection import ALGORITHMS

P = 4
N = 3000


def batch_stream(machine, chunks, **kwargs):
    stream = machine.stream(**kwargs)
    for chunk in chunks:
        stream.append(chunk)
    return stream


class TestStreamingArray:
    def test_round_robin_balance(self):
        m = Machine(P)
        s = batch_stream(m, [np.arange(10.0), np.arange(7.0)])
        assert isinstance(s, StreamingArray)
        assert isinstance(s, repro.DistributedArray)
        assert s.n == 17
        assert max(s.counts) - min(s.counts) <= 1

    def test_append_chunking_is_invisible(self):
        m = Machine(P)
        rng = np.random.default_rng(0)
        data = rng.random(997)
        whole = batch_stream(m, [data])
        pieces = batch_stream(m, [data[:100], data[100:101], data[101:]])
        for a, b in zip(whole.shards, pieces.shards):
            assert (a == b).all()
        assert whole.fingerprint == pieces.fingerprint
        assert sorted(whole.gather()) == sorted(data)

    def test_fingerprint_changes_on_append_and_retire(self):
        m = Machine(P)
        s = batch_stream(m, [np.arange(8.0)])
        fp0 = s.fingerprint
        s.append(np.arange(8.0, 16.0))
        fp1 = s.fingerprint
        assert fp1 != fp0
        s.retire(s.live_batch_ids[0])
        assert s.fingerprint not in (fp0, fp1)

    def test_empty_batch_is_a_mutation_but_not_content(self):
        m = Machine(P)
        a = batch_stream(m, [np.arange(6.0)])
        b = batch_stream(m, [np.arange(6.0), np.array([])])
        # Same bytes per rank: same identity (precise invalidation).
        assert a.fingerprint == b.fingerprint
        assert b.generation == 2

    def test_sliding_window_retires_oldest(self):
        m = Machine(P)
        s = m.stream(window=2)
        for i in range(4):
            s.append(np.arange(5.0) + 10 * i)
        assert s.live_batches == 2
        assert s.batches_retired == 2
        assert sorted(s.gather()) == sorted(
            np.concatenate([np.arange(5.0) + 20, np.arange(5.0) + 30])
        )

    def test_tumbling_window_resets(self):
        m = Machine(P)
        s = m.stream(window=2, window_mode="tumbling")
        s.append(np.arange(3.0))
        s.append(np.arange(3.0, 6.0))
        assert s.live_batches == 2
        s.append(np.arange(6.0, 9.0))  # starts the next window
        assert s.live_batches == 1
        assert sorted(s.gather()) == [6.0, 7.0, 8.0]

    def test_sliding_steady_state_never_rehashes_the_window(self):
        """O(batch) fingerprints: once the window slides, appends must not
        rebuild hash chains over the surviving batches — each batch's
        digest is computed exactly once."""
        m = Machine(P)
        s = m.stream(window=3)
        fingerprints = set()
        for i in range(6):
            s.append(np.arange(50.0) + 100 * i)
            fingerprints.add(s.fingerprint)
        assert len(fingerprints) == 6  # every mutation changed identity
        assert s._rank_hashers is None  # digest-chain mode: no running hash
        digests = [b.rank_digests() for b in s._batches]
        s.append(np.arange(50.0) + 999)
        s.fingerprint
        # The surviving batches' digests were reused, not recomputed.
        assert all(b.rank_digests() is d
                   for b, d in zip(s._batches, digests[1:]))

    def test_retire_unknown_batch_raises(self):
        m = Machine(P)
        s = batch_stream(m, [np.arange(4.0)])
        with pytest.raises(ConfigurationError):
            s.retire(99)

    def test_validation(self):
        m = Machine(P)
        with pytest.raises(ConfigurationError):
            m.stream(window=0)
        with pytest.raises(ConfigurationError):
            m.stream(window_mode="hopping")
        s = m.stream()
        with pytest.raises(ConfigurationError):
            s.append(np.zeros((2, 2)))
        s.append(np.arange(4.0))
        with pytest.raises(ConfigurationError):
            s.append(np.array(["a", "b"]))  # no safe cast to float64

    def test_dtype_fixed_by_first_append(self):
        m = Machine(P)
        s = m.stream()
        s.append(np.arange(4.0))
        s.append(np.arange(4, dtype=np.int32))  # safe cast
        assert all(sh.dtype == np.float64 for sh in s.shards)

    def test_local_sketches_cover_live_window(self):
        m = Machine(P)
        rng = np.random.default_rng(5)
        s = batch_stream(m, [rng.random(400), rng.random(300)], window=2)
        sketches = s.local_sketches(0.05)
        assert len(sketches) == P
        assert sum(sk.count for sk in sketches) == s.n
        s.append(rng.random(200))  # retires the first batch
        sketches = s.local_sketches(0.05)
        assert sum(sk.count for sk in sketches) == s.n


class TestStreamingServing:
    def test_append_then_flush_equals_batch_flush(self):
        """Acceptance: append-then-flush == batch-array flush (values and
        cache behaviour), and re-queries with no append are zero-launch
        cache hits."""
        m = Machine(P)
        rng = np.random.default_rng(1)
        a, b = rng.random(900), rng.random(1100)
        streamed = batch_stream(m, [a, b])
        batch = batch_stream(m, [np.concatenate([a, b])])
        session = m.session()
        ks = [1, 500, 1000, 2000]

        before = m.launch_count
        futs = [session.select(streamed, k) for k in ks]
        session.flush()
        assert m.launch_count - before == 1
        streamed_values = [f.value for f in futs]

        # Identical content, identical fingerprint: the batch array's
        # flush is served from cache with ZERO launches.
        before = m.launch_count
        futs2 = [session.select(batch, k) for k in ks]
        session.flush()
        assert m.launch_count == before
        assert [f.value for f in futs2] == streamed_values
        assert all(f.result().cached for f in futs2)

        oracle = np.sort(np.concatenate([a, b]))
        assert streamed_values == [oracle[k - 1] for k in ks]

    def test_append_invalidates_precisely(self):
        m = Machine(P)
        rng = np.random.default_rng(2)
        s = batch_stream(m, [rng.random(1000)])
        session = m.session()
        k = 500
        session.run_select(s, k)
        before = m.launch_count
        rep = session.run_select(s, k)
        assert rep.cached and m.launch_count == before  # no append: hit
        s.append(rng.random(500))
        rep2 = session.run_select(s, k)
        assert not rep2.cached and m.launch_count == before + 1

    def test_fluent_queries_and_windows(self):
        m = Machine(P)
        rng = np.random.default_rng(3)
        s = m.stream(window=2)
        medians = []
        for i in range(4):
            s.append(rng.random(300) + i)
            medians.append(s.median().value)
        oracle = np.sort(s.gather())
        assert medians[-1] == oracle[(s.n + 1) // 2 - 1]
        assert len(set(medians)) > 1  # the window genuinely moved

    @pytest.mark.parametrize("backend", ["serial", "threaded"])
    def test_streaming_batch_equivalence_across_backends(self, backend):
        m = Machine(P, backend=backend)
        rng = np.random.default_rng(4)
        chunks = [rng.random(n) for n in (400, 1, 700, 250)]
        streamed = batch_stream(m, chunks)
        batch = batch_stream(m, [np.concatenate(chunks)])
        plan = SelectionPlan(algorithm="randomized", seed=3)
        one_shot = m.session(cache=False)
        r1 = one_shot.run_multi_select(streamed, [1, 700, 1351], plan)
        r2 = one_shot.run_multi_select(batch, [1, 700, 1351], plan)
        assert r1.values == r2.values
        assert r1.simulated_time == r2.simulated_time
        assert [i.pivot for i in r1.stats.iterations] == \
            [i.pivot for i in r2.stats.iterations]

    @given(st.lists(st.lists(st.floats(-100, 100, allow_nan=False,
                                       width=64),
                             min_size=0, max_size=40),
                    min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_streamed_answers_match_oracle(self, chunks):
        data = np.concatenate([np.asarray(c) for c in chunks]) if any(
            len(c) for c in chunks) else np.array([])
        if data.size == 0:
            return
        m = Machine(P)
        s = batch_stream(m, [np.asarray(c) for c in chunks])
        oracle = np.sort(data)
        k = (data.size + 1) // 2
        assert s.select(k).value == oracle[k - 1]


ALGOS = sorted(ALGORITHMS)
DISTS = sorted(DISTRIBUTIONS)


class TestSketchRefinement:
    @pytest.mark.parametrize("algorithm", ALGOS)
    @pytest.mark.parametrize("distribution", DISTS)
    def test_bit_identical_to_plain(self, algorithm, distribution):
        """Acceptance: sketch-prefiltered selection returns bit-identical
        values to plain select/multi_select for every algorithm x
        distribution."""
        m = Machine(P)
        data = m.generate(N, distribution, seed=7)
        session = m.session(cache=False)
        plan = SelectionPlan(algorithm=algorithm, seed=2)
        pre = plan.replace(prefilter="sketch")
        k = N // 2
        assert session.run_select(data, k, pre).value == \
            session.run_select(data, k, plan).value
        ks = [1, N // 3, N // 2, N]
        plain_multi = session.run_multi_select(data, ks, plan)
        pre_multi = session.run_multi_select(data, ks, pre)
        assert pre_multi.values == plain_multi.values
        assert pre_multi.prefilter is not None
        assert not pre_multi.prefilter.fallback

    @pytest.mark.parametrize("algorithm", ["randomized", "fast_randomized",
                                           "bucket_based"])
    def test_backend_identity(self, algorithm):
        """Full launch-evidence identity of the prefiltered path across
        serial/threaded (the cross-backend acceptance criterion)."""
        reports = []
        for backend in ("serial", "threaded"):
            m = Machine(P, backend=backend)
            data = m.generate(N, "random", seed=5)
            plan = SelectionPlan(algorithm=algorithm, seed=2,
                                 prefilter="sketch")
            reports.append(
                m.session(cache=False).run_multi_select(
                    data, [1, N // 2, N], plan)
            )
        a, b = reports
        assert a.values == b.values
        assert a.simulated_time == b.simulated_time
        assert [i.pivot for i in a.stats.iterations] == \
            [i.pivot for i in b.stats.iterations]
        assert a.prefilter == b.prefilter

    def test_survivor_fraction_small_on_random(self):
        m = Machine(P)
        data = m.generate(60_000, "random", seed=9)
        rep = m.session(cache=False).run_select(
            data, 30_000, SelectionPlan(prefilter="sketch", sketch_eps=0.01)
        )
        pf = rep.prefilter
        assert pf is not None and not pf.fallback
        assert pf.survivor_fraction < 0.10
        assert pf.rounds_saved >= 3
        assert pf.sketch_size <= P * (2 / 0.01 + 2)

    def test_prebuilt_sketches_on_streaming_array(self):
        m = Machine(P)
        rng = np.random.default_rng(6)
        s = batch_stream(m, [rng.random(2000), rng.random(1000)])
        rep = m.session(cache=False).run_select(
            s, 1500, SelectionPlan(prefilter="sketch")
        )
        assert rep.prefilter.prebuilt
        assert rep.value == np.sort(s.gather())[1499]
        # Plain arrays build in-launch.
        data = m.generate(N, "random", seed=1)
        rep2 = m.session(cache=False).run_select(
            data, 7, SelectionPlan(prefilter="sketch")
        )
        assert not rep2.prefilter.prebuilt

    def test_quantiles_and_coalesced_flush_with_prefilter(self):
        m = Machine(P)
        data = m.generate(N, "gaussian", seed=8)
        plan = SelectionPlan(prefilter="sketch")
        session = m.session(plan)
        before = m.launch_count
        futs = session.quantiles(data, [0.1, 0.5, 0.9, 0.99])
        session.flush()
        assert m.launch_count - before == 1
        oracle = np.sort(data.gather())
        for q, fut in zip([0.1, 0.5, 0.9, 0.99], futs):
            k = max(1, int(np.ceil(q * N)))
            assert fut.value == oracle[k - 1]
            assert fut.result().prefilter is not None
        # Replay: zero launches, prefilter evidence preserved from cache.
        reps = [f.result() for f in session.quantiles(data, [0.5, 0.9])]
        assert m.launch_count - before == 1
        assert all(r.cached and r.prefilter is not None for r in reps)

    def test_corrupted_sketch_bounds_fall_back_exactly(self):
        """The safety valve: if the sketch bounds ever fail verification
        against the exact counts, every rank deterministically re-runs on
        the full input — answers stay correct, evidence records the
        fallback."""
        m = Machine(P)
        rng = np.random.default_rng(13)
        s = batch_stream(m, [rng.random(2000)])
        # Lie to the refinement: sketches of shifted content bracket every
        # rank far away from the real keys, so the exact counts refute
        # them and no interval can cover any target.
        s.local_sketches = lambda eps: [
            repro.QuantileSketch.from_array(shard + 1e9, eps)
            for shard in s.shards
        ]
        oracle = np.sort(s.gather())
        ks = [1, 1000, 2000]
        rep = m.session(cache=False).run_multi_select(
            s, ks, SelectionPlan(prefilter="sketch")
        )
        assert rep.values == [oracle[k - 1] for k in ks]
        assert rep.prefilter.fallback
        assert rep.prefilter.survivor_fraction == 1.0
        single = m.session(cache=False).run_select(
            s, 1000, SelectionPlan(prefilter="sketch")
        )
        assert single.value == oracle[999]
        assert single.prefilter.fallback

    def test_plan_validation_and_cache_key(self):
        with pytest.raises(ConfigurationError):
            SelectionPlan(prefilter="bloom")
        with pytest.raises(ConfigurationError):
            SelectionPlan(prefilter="sketch", sketch_eps=0.0)
        with pytest.raises(ConfigurationError):
            SelectionPlan(prefilter="sketch", sketch_eps=0.7)
        assert SelectionPlan(prefilter="none").prefilter is None
        plain = SelectionPlan()
        pre = SelectionPlan(prefilter="sketch")
        assert plain.cache_key() != pre.cache_key()
        # eps only matters when the prefilter is on.
        assert SelectionPlan(sketch_eps=0.2).cache_key() == plain.cache_key()
        assert pre.cache_key() != \
            SelectionPlan(prefilter="sketch", sketch_eps=0.2).cache_key()
        assert "prefilter=sketch" in pre.describe()

    def test_empty_multi_select_with_prefilter(self):
        m = Machine(P)
        data = m.generate(100, "random", seed=0)
        rep = m.session(cache=False).run_multi_select(
            data, [], SelectionPlan(prefilter="sketch")
        )
        assert rep.values == [] and len(rep) == 0

    def test_legacy_shim_accepts_prefilter_plan_via_fluent(self):
        m = Machine(P)
        data = m.generate(500, "zipf", seed=4)
        rep = data.select(250, prefilter="sketch")
        assert rep.value == repro.select(data, 250).value

    def test_prefilter_stats_shape(self):
        m = Machine(P)
        data = m.generate(N, "few_distinct", seed=2)
        rep = m.session(cache=False).run_select(
            data, N // 2, SelectionPlan(prefilter="sketch")
        )
        pf = rep.prefilter
        assert pf.n == N
        assert 1 <= pf.survivors <= N
        assert pf.intervals >= 1
        assert 0.0 < pf.survivor_fraction <= 1.0
        assert pf.eps == 0.01
