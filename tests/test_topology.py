"""Topology layer: structural helpers, schedule lowering, crossbar pins."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.machine import CostModel, SPMDRuntime, run_spmd
from repro.machine.cost_model import ComputeCosts, cm5, cm5_two_level
from repro.machine.topology import (
    TOPOLOGIES,
    BinomialTreeTopology,
    CrossbarTopology,
    HypercubeTopology,
    TwoLevelTopology,
    available_topologies,
    default_topology_spec,
    hypercube_partner,
    hypercube_rounds,
    is_power_of_two,
    log2_ceil,
    next_power_of_two,
    resolve_topology,
    tree_children,
    validate_topology_spec,
)

#: Zeroed compute, awkward link constants: schedule-pricing tests read
#: communication time only, and any float drift shows in the low bits.
LINKS = CostModel(
    tau=0.1, mu=0.007,
    compute=ComputeCosts(0, 0, 0, 0, 0, 0, 0, 0),
    name="links",
)


class TestPowers:
    @pytest.mark.parametrize("p,expect", [(1, True), (2, True), (3, False),
                                          (4, True), (6, False), (128, True)])
    def test_is_power_of_two(self, p, expect):
        assert is_power_of_two(p) is expect

    @pytest.mark.parametrize("p,expect", [(1, 1), (2, 2), (3, 4), (5, 8),
                                          (8, 8), (9, 16), (100, 128)])
    def test_next_power_of_two(self, p, expect):
        assert next_power_of_two(p) == expect

    @pytest.mark.parametrize("p,expect", [(1, 0), (2, 1), (3, 2), (4, 2),
                                          (7, 3), (8, 3), (128, 7)])
    def test_log2_ceil(self, p, expect):
        assert log2_ceil(p) == expect

    def test_rejects_nonpositive(self):
        for fn in (next_power_of_two, log2_ceil):
            with pytest.raises(ConfigurationError):
                fn(0)


class TestPartners:
    def test_partner_is_involution(self):
        p = 16
        for dim in range(4):
            for r in range(p):
                q = hypercube_partner(r, dim, p)
                assert q is not None
                assert hypercube_partner(q, dim, p) == r

    def test_partner_missing_on_non_pow2(self):
        # p=6: rank 2 ^ 4 = 6 which does not exist.
        assert hypercube_partner(2, 2, 6) is None
        assert hypercube_partner(1, 0, 6) == 0

    def test_rank_out_of_range(self):
        with pytest.raises(ConfigurationError):
            hypercube_partner(9, 0, 4)


class TestRounds:
    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_pow2_rounds_cover_all_ranks(self, p):
        rounds = list(hypercube_rounds(p))
        assert len(rounds) == log2_ceil(p)
        for pairs in rounds:
            seen = [r for pair in pairs for r in pair]
            assert sorted(seen) == list(range(p))  # perfect matching

    def test_non_pow2_rounds_are_disjoint(self):
        for pairs in hypercube_rounds(6):
            seen = [r for pair in pairs for r in pair]
            assert len(seen) == len(set(seen))
            assert all(0 <= r < 6 for r in seen)


class TestTreeChildren:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8, 13, 16, 128])
    def test_binomial_tree_spans_all_ranks(self, p):
        # Union of parent->child edges reaches every rank exactly once.
        reached = {0}
        frontier = [0]
        depth = 0
        while frontier:
            nxt = []
            for r in frontier:
                for c in tree_children(r, p):
                    assert c not in reached
                    reached.add(c)
                    nxt.append(c)
            frontier = nxt
            depth += 1
            assert depth <= log2_ceil(p) + 1
        assert reached == set(range(p))

    @given(st.integers(min_value=1, max_value=200))
    def test_property_children_in_range(self, p):
        for r in range(p):
            for c in tree_children(r, p):
                assert r < c < p


# ---------------------------------------------------------------------------
# Registry and spec resolution
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_available_topologies(self):
        assert available_topologies() == (
            "binomial-tree", "crossbar", "hypercube", "two-level"
        )

    def test_validate_spec_canonicalises(self):
        assert validate_topology_spec("crossbar") == "crossbar"
        assert validate_topology_spec("tree") == "binomial-tree"
        assert validate_topology_spec("two-level:8") == "two-level:8"

    def test_validate_spec_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown topology") as ei:
            validate_topology_spec("torus")
        for name in available_topologies():
            assert name in str(ei.value)

    def test_validate_spec_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError, match="no parameter"):
            validate_topology_spec("hypercube:2")
        with pytest.raises(ConfigurationError, match="cluster size"):
            validate_topology_spec("two-level:zero")
        with pytest.raises(ConfigurationError, match="cluster size"):
            validate_topology_spec("two-level:-1")
        with pytest.raises(ConfigurationError, match="string"):
            validate_topology_spec(4)

    def test_resolve_by_name_and_instance(self):
        topo = resolve_topology("hypercube", 8)
        assert isinstance(topo, HypercubeTopology) and topo.p == 8
        assert resolve_topology(topo, 8) is topo
        assert resolve_topology(None, 4).name == "crossbar"
        assert resolve_topology("two-level:2", 8).cluster_size == 2

    def test_resolve_rejects_wrong_p_instance(self):
        topo = CrossbarTopology(4)
        with pytest.raises(ConfigurationError, match="wired for p=4"):
            resolve_topology(topo, 8)

    def test_resolve_rejects_bad_type(self):
        with pytest.raises(ConfigurationError, match="topology must be"):
            resolve_topology(3.14, 4)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TOPOLOGY", raising=False)
        assert default_topology_spec() == "crossbar"
        monkeypatch.setenv("REPRO_TOPOLOGY", "hypercube")
        assert default_topology_spec() == "hypercube"
        assert run_spmd(lambda ctx: None, 2).topology == "hypercube"
        monkeypatch.setenv("REPRO_TOPOLOGY", "donut")
        with pytest.raises(ConfigurationError, match="unknown topology"):
            default_topology_spec()

    def test_every_registered_topology_constructs(self):
        for name, cls in TOPOLOGIES.items():
            topo = cls(6)
            assert topo.name == name
            assert name in topo.describe()

    def test_topology_rejects_bad_p(self):
        for cls in TOPOLOGIES.values():
            with pytest.raises(ConfigurationError):
                cls(0)

    def test_runtime_carries_topology(self):
        rt = SPMDRuntime(4, topology="binomial-tree")
        assert rt.topology.name == "binomial-tree"
        res = rt.run(lambda ctx: ctx.rank)
        assert res.topology == "binomial-tree"
        # Per-launch override leaves the runtime default untouched.
        res = rt.run(lambda ctx: ctx.rank, topology="crossbar")
        assert res.topology == "crossbar"
        assert rt.topology.name == "binomial-tree"


# ---------------------------------------------------------------------------
# Schedule structure
# ---------------------------------------------------------------------------


def _assert_transfers_valid(sched, p):
    for rnd in sched.rounds:
        for t in rnd:
            assert 0 <= t.src < p and 0 <= t.dst < p and t.src != t.dst
            assert t.words >= 0


class TestSchedules:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 6, 8, 16])
    def test_broadcast_reaches_every_rank(self, name, p):
        topo = TOPOLOGIES[name](p)
        for root in {0, p - 1, p // 2}:
            sched = topo.broadcast_schedule(cm5(), root, 10.0)
            _assert_transfers_valid(sched, p)
            informed = {root}
            for rnd in sched.rounds:
                for t in rnd:
                    assert t.src in informed, (
                        f"{name}: rank {t.src} forwards before it is informed"
                    )
                    informed.add(t.dst)
            assert informed == set(range(p))

    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("p", [2, 3, 4, 6, 8])
    def test_gather_collects_every_contribution(self, name, p):
        topo = TOPOLOGIES[name](p)
        for root in {0, p - 1}:
            sched = topo.gather_schedule(cm5(), root, 1.0)
            _assert_transfers_valid(sched, p)
            # Every non-root rank's contribution must leave it at least once.
            senders = {t.src for rnd in sched.rounds for t in rnd}
            assert set(range(p)) - {root} <= senders

    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_rounds_are_send_matchings_for_tree_and_cube(self, name):
        # Tree and hypercube collectives never ask one rank to send two
        # messages in the same round (store-and-forward discipline).
        if name == "two-level":
            return
        topo = TOPOLOGIES[name](8)
        for sched in (
            topo.broadcast_schedule(cm5(), 0, 4.0),
            topo.combine_schedule(cm5(), 4.0),
            topo.gather_schedule(cm5(), 0, 4.0),
            topo.allgather_schedule(cm5(), 4.0),
        ):
            assert sched.congestion <= 1

    def test_congestion_surfaces_tree_root_bottleneck(self):
        # Bandwidth-bound all-to-all over a tree funnels through the root
        # link. (Start-up-bound traffic can be *cheaper* on the tree: hop
        # batching amortises tau — so the test uses fat messages.)
        p = 8
        words = [
            [1e6 if s != d else None for d in range(p)] for s in range(p)
        ]
        tree = BinomialTreeTopology(p).alltoallv_schedule(cm5(), words)
        crossbar = CrossbarTopology(p).alltoallv_schedule(cm5(), words)
        assert tree.congestion >= 1
        assert crossbar.congestion == p - 1  # dense direct exchange
        assert tree.cost > crossbar.cost  # the bottleneck costs real time

    def test_schedule_cost_is_sum_of_round_costs_off_crossbar(self):
        topo = HypercubeTopology(8)
        sched = topo.combine_schedule(LINKS, 5.0)
        assert sched.cost == sum(sched.round_costs)
        assert len(sched.round_costs) == sched.n_rounds == 3

    def test_empty_schedules_on_single_rank(self):
        for cls in TOPOLOGIES.values():
            topo = cls(1)
            assert topo.broadcast_schedule(cm5(), 0, 9.0).cost == 0.0
            assert topo.combine_schedule(cm5(), 9.0).n_rounds == 0
            assert topo.barrier_schedule(cm5()).cost == 0.0


class TestRouting:
    def test_crossbar_routes_direct(self):
        topo = CrossbarTopology(8)
        assert topo.route(3, 3) == []
        assert topo.route(2, 7) == [(2, 7, False)]

    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_tree_route_follows_parent_child_edges(self, p):
        topo = BinomialTreeTopology(p)
        for a in range(p):
            for b in range(p):
                hops = topo.route(a, b)
                if a == b:
                    assert hops == []
                    continue
                assert hops[0][0] == a and hops[-1][1] == b
                for u, v, _ in hops:
                    assert u & (u - 1) == v or v & (v - 1) == u, (
                        f"({u},{v}) is not a tree edge"
                    )

    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_hypercube_route_is_ecube(self, p):
        topo = HypercubeTopology(p)
        for a in range(p):
            for b in range(p):
                hops = topo.route(a, b)
                if a == b:
                    assert hops == []
                    continue
                assert hops[0][0] == a and hops[-1][1] == b
                for u, v, _ in hops:
                    assert is_power_of_two(u ^ v)  # one address bit per hop
                assert len(hops) == bin(a ^ b).count("1")

    def test_hypercube_route_folds_missing_corners(self):
        # p=6: the e-cube path 5 -> 4 -> 6 -> 2 passes corner 6, which
        # does not exist; the fold skips it.
        topo = HypercubeTopology(6)
        hops = topo.route(5, 2)
        nodes = [hops[0][0]] + [v for _, v, _ in hops]
        assert all(n < 6 for n in nodes)
        assert nodes[0] == 5 and nodes[-1] == 2

    def test_two_level_route_flags_cluster_crossings(self):
        topo = TwoLevelTopology(8, cluster_size=4)
        assert topo.route(0, 3) == [(0, 3, False)]
        assert topo.route(1, 6) == [(1, 6, True)]


class TestTwoLevelStructure:
    def test_membership(self):
        topo = TwoLevelTopology(10, cluster_size=4)
        assert topo.n_clusters == 3
        assert [topo.cluster(r) for r in range(10)] == \
            [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]
        assert list(topo.members(2)) == [8, 9]
        assert topo.leader(1) == 4

    def test_default_cluster_size_is_square_ish(self):
        assert TwoLevelTopology(16).cluster_size == 4
        assert TwoLevelTopology(64).cluster_size == 8
        assert TwoLevelTopology(2).cluster_size <= 2

    def test_describe_names_the_split(self):
        assert TwoLevelTopology(16, cluster_size=4).describe() == \
            "two-level(p=16, clusters=4x4)"

    def test_rejects_bad_cluster_size(self):
        with pytest.raises(ConfigurationError, match="cluster_size"):
            TwoLevelTopology(8, cluster_size=0)


# ---------------------------------------------------------------------------
# Crossbar: bit-identical to the paper's closed forms (the refactor pin)
# ---------------------------------------------------------------------------


def _mixed_program(ctx):
    ctx.comm.broadcast(np.zeros(17) if ctx.rank == 0 else None, root=0)
    ctx.comm.combine(float(ctx.rank))
    ctx.comm.prefix_sum(ctx.rank + 1)
    ctx.comm.gather(np.zeros(9), root=min(2, ctx.size - 1))
    ctx.comm.global_concat(np.zeros(3))
    sends = [
        np.zeros(ctx.rank + d + 1) if d != ctx.rank else None
        for d in range(ctx.size)
    ]
    ctx.comm.alltoallv(sends)
    partner = ctx.rank ^ 1
    partner = partner if partner < ctx.size else None
    ctx.comm.pairwise_exchange(
        partner, np.zeros(31) if partner is not None else None
    )
    ctx.comm.barrier()
    return ctx.clock.now


def _legacy_formulas(p, tau, mu):
    """The pre-schedule engine's monolithic price of ``_mixed_program``."""
    L = max(0, int(math.ceil(math.log2(p)))) if p > 1 else 0
    t = 0.0
    t += (tau + mu * 17.0) * L
    t += (tau + mu * 1.0) * L
    t += (tau + mu * 1.0) * L
    t += tau * L + mu * 9.0 * (p - 1)
    t += tau * L + mu * 3.0 * (p - 1)
    out = [sum(i + d + 1 for d in range(p) if d != i) for i in range(p)]
    inc = [sum(s + d + 1 for s in range(p) if s != d) for d in range(p)]
    traffic = max(max(o, i_) for o, i_ in zip(out, inc)) if p > 1 else 0.0
    t += tau * (p - 1 if p > 1 else 0) + 2.0 * mu * float(traffic)
    if p > 1:
        t += tau + mu * 31.0
    t += (tau + mu) * L
    return t


class TestCrossbarBitIdentity:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 7, 8, 16])
    def test_simulated_time_bit_identical_to_closed_forms(self, p):
        res = run_spmd(_mixed_program, p, cost_model=LINKS,
                       topology="crossbar")
        expected = _legacy_formulas(p, LINKS.tau, LINKS.mu)
        assert res.simulated_time == expected  # ==, not approx: the pin
        assert all(c == expected for c in res.clocks)

    def test_default_topology_is_crossbar(self):
        res = run_spmd(_mixed_program, 4, cost_model=LINKS)
        explicit = run_spmd(_mixed_program, 4, cost_model=LINKS,
                            topology="crossbar")
        assert res.topology == "crossbar"
        assert res.simulated_time == explicit.simulated_time

    def test_hierarchy_fields_do_not_change_flat_topologies(self):
        # tau_inter/mu_inter are only consulted by the two-level shape.
        hier = cm5_two_level()
        for topo in ("crossbar", "binomial-tree", "hypercube"):
            a = run_spmd(_mixed_program, 5, cost_model=cm5(), topology=topo)
            b = run_spmd(_mixed_program, 5, cost_model=hier, topology=topo)
            assert a.simulated_time == b.simulated_time, topo

    def test_two_level_feels_the_hierarchy(self):
        flat = run_spmd(_mixed_program, 8, cost_model=cm5(),
                        topology="two-level")
        hier = run_spmd(_mixed_program, 8, cost_model=cm5_two_level(),
                        topology="two-level")
        assert hier.simulated_time > flat.simulated_time


# ---------------------------------------------------------------------------
# Round counts: schedules match the analytic depths
# ---------------------------------------------------------------------------


class TestRoundCounts:
    def _rounds(self, p, topology, program):
        res = run_spmd(program, p, topology=topology, trace=True)
        return res.collective_rounds()

    @pytest.mark.parametrize("p", [2, 3, 4, 6, 8, 16])
    @pytest.mark.parametrize("topology", ["crossbar", "hypercube"])
    def test_log_depth_collectives(self, p, topology):
        def prog(ctx):
            ctx.comm.broadcast(1.0 if ctx.rank == 0 else None, root=0)
            ctx.comm.combine(1.0)
            ctx.comm.prefix_sum(1)
            ctx.comm.gather(1.0, root=0)
            ctx.comm.global_concat(1.0)

        rounds = self._rounds(p, topology, prog)
        L = log2_ceil(p)
        for op in ("broadcast", "combine", "prefix", "gather", "allgather"):
            assert rounds[op]["rounds"] == L, (topology, op)

    @pytest.mark.parametrize("p", [2, 4, 8, 13])
    def test_tree_up_down_depth(self, p):
        def prog(ctx):
            ctx.comm.broadcast(1.0 if ctx.rank == 0 else None, root=0)
            ctx.comm.combine(1.0)

        rounds = self._rounds(p, "binomial-tree", prog)
        L = log2_ceil(p)
        assert rounds["broadcast"]["rounds"] == L  # root 0: pure fan-out
        assert rounds["combine"]["rounds"] == 2 * L  # fold up + fan down

    def test_two_level_stage_depths(self):
        def prog(ctx):
            ctx.comm.broadcast(1.0 if ctx.rank == 0 else None, root=0)
            ctx.comm.combine(1.0)

        # p=8 with the default square-ish split: 2 clusters of 4.
        rounds = self._rounds(8, "two-level", prog)
        ls, lc = log2_ceil(4), log2_ceil(2)
        assert rounds["broadcast"]["rounds"] == lc + ls
        assert rounds["combine"]["rounds"] == 2 * ls + lc

    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_pairwise_exchange_is_one_round_for_adjacent_pairs(self, topology):
        def prog(ctx):
            ctx.comm.pairwise_exchange(ctx.rank ^ 1, ctx.rank)

        rounds = self._rounds(4, topology, prog)
        # rank^1 pairs are hypercube dim-0 neighbours and tree
        # parent-child edges: single-hop everywhere.
        assert rounds["pairwise_exchange"]["rounds"] == 1

    @pytest.mark.parametrize("p", [4, 8])
    def test_hypercube_dimension_rounds_match_helper(self, p):
        def prog(ctx):
            ctx.comm.combine(1.0)

        rounds = self._rounds(p, "hypercube", prog)
        assert rounds["combine"]["rounds"] == len(list(hypercube_rounds(p)))


# ---------------------------------------------------------------------------
# Hierarchical cost model
# ---------------------------------------------------------------------------


class TestHierarchicalCostModel:
    def test_link_defaults_to_flat(self):
        m = cm5()
        assert m.link(False) == (m.tau, m.mu)
        assert m.link(True) == (m.tau, m.mu)

    def test_link_inter_overrides(self):
        m = cm5().replace(tau_inter=1.0, mu_inter=2.0)
        assert m.link(False) == (m.tau, m.mu)
        assert m.link(True) == (1.0, 2.0)

    def test_cm5_two_level_preset(self):
        m = cm5_two_level()
        assert m.tau_inter == m.tau * 4.0
        assert m.mu_inter == m.mu * 8.0
        assert m.name == "CM5-2level"

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf"), "x"])
    def test_validation_rejects_bad_inter_links(self, bad):
        with pytest.raises(ConfigurationError):
            CostModel(tau_inter=bad)
        with pytest.raises(ConfigurationError):
            CostModel(mu_inter=bad)


class TestTraceSummaryAggregates:
    """Regression: machine-wide aggregate records (``TraceEvent.rank is
    None``) used to fall through ``from_tracer``'s integer-rank filter
    silently — a per-rank summary quietly under-counted whatever a
    producer logged machine-wide. The handling is explicit now."""

    @staticmethod
    def _tracer():
        from repro.machine.trace import TraceEvent, Tracer

        tracer = Tracer()
        tracer.record(TraceEvent(0, "broadcast", 4.0, 0.0, 1.0))
        tracer.record(TraceEvent(1, "broadcast", 4.0, 0.0, 1.0))
        tracer.record(TraceEvent(None, "balance", 16.0, 1.0, 3.0))
        return tracer

    def test_rank_filter_includes_aggregates_by_default(self):
        from repro.machine.trace import TraceSummary

        s = TraceSummary.from_tracer(self._tracer(), rank=0)
        assert s.counts == {"broadcast": 1, "balance": 1}
        assert s.time["balance"] == pytest.approx(2.0)

    def test_exclude_restores_historical_filter(self):
        from repro.machine.trace import TraceSummary

        s = TraceSummary.from_tracer(
            self._tracer(), rank=0, aggregates="exclude"
        )
        assert s.counts == {"broadcast": 1}
        assert "balance" not in s.counts

    def test_only_selects_aggregate_records(self):
        from repro.machine.trace import TraceSummary

        s = TraceSummary.from_tracer(self._tracer(), aggregates="only")
        assert s.counts == {"balance": 1}

    def test_no_filter_sums_everything(self):
        from repro.machine.trace import TraceSummary

        s = TraceSummary.from_tracer(self._tracer())
        assert s.counts == {"broadcast": 2, "balance": 1}

    def test_bad_mode_raises(self):
        from repro.machine.trace import TraceSummary

        with pytest.raises(ValueError, match="aggregates"):
            TraceSummary.from_tracer(self._tracer(), aggregates="sometimes")
