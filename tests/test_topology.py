"""Unit tests for hypercube/topology helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.machine.topology import (
    hypercube_partner,
    hypercube_rounds,
    is_power_of_two,
    log2_ceil,
    next_power_of_two,
    tree_children,
)


class TestPowers:
    @pytest.mark.parametrize("p,expect", [(1, True), (2, True), (3, False),
                                          (4, True), (6, False), (128, True)])
    def test_is_power_of_two(self, p, expect):
        assert is_power_of_two(p) is expect

    @pytest.mark.parametrize("p,expect", [(1, 1), (2, 2), (3, 4), (5, 8),
                                          (8, 8), (9, 16), (100, 128)])
    def test_next_power_of_two(self, p, expect):
        assert next_power_of_two(p) == expect

    @pytest.mark.parametrize("p,expect", [(1, 0), (2, 1), (3, 2), (4, 2),
                                          (7, 3), (8, 3), (128, 7)])
    def test_log2_ceil(self, p, expect):
        assert log2_ceil(p) == expect

    def test_rejects_nonpositive(self):
        for fn in (next_power_of_two, log2_ceil):
            with pytest.raises(ConfigurationError):
                fn(0)


class TestPartners:
    def test_partner_is_involution(self):
        p = 16
        for dim in range(4):
            for r in range(p):
                q = hypercube_partner(r, dim, p)
                assert q is not None
                assert hypercube_partner(q, dim, p) == r

    def test_partner_missing_on_non_pow2(self):
        # p=6: rank 2 ^ 4 = 6 which does not exist.
        assert hypercube_partner(2, 2, 6) is None
        assert hypercube_partner(1, 0, 6) == 0

    def test_rank_out_of_range(self):
        with pytest.raises(ConfigurationError):
            hypercube_partner(9, 0, 4)


class TestRounds:
    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_pow2_rounds_cover_all_ranks(self, p):
        rounds = list(hypercube_rounds(p))
        assert len(rounds) == log2_ceil(p)
        for pairs in rounds:
            seen = [r for pair in pairs for r in pair]
            assert sorted(seen) == list(range(p))  # perfect matching

    def test_non_pow2_rounds_are_disjoint(self):
        for pairs in hypercube_rounds(6):
            seen = [r for pair in pairs for r in pair]
            assert len(seen) == len(set(seen))
            assert all(0 <= r < 6 for r in seen)


class TestTreeChildren:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8, 13, 16, 128])
    def test_binomial_tree_spans_all_ranks(self, p):
        # Union of parent->child edges reaches every rank exactly once.
        reached = {0}
        frontier = [0]
        depth = 0
        while frontier:
            nxt = []
            for r in frontier:
                for c in tree_children(r, p):
                    assert c not in reached
                    reached.add(c)
                    nxt.append(c)
            frontier = nxt
            depth += 1
            assert depth <= log2_ceil(p) + 1
        assert reached == set(range(p))

    @given(st.integers(min_value=1, max_value=200))
    def test_property_children_in_range(self, p):
        for r in range(p):
            for c in tree_children(r, p):
                assert r < c < p
