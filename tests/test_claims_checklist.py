"""The executable claims checklist machinery (the full checklist itself runs
via ``python -m repro.bench claims``; benches pin the individual claims)."""

from repro.bench.claims import CLAIMS


class TestRegistry:
    def test_all_documented_claims_present(self):
        ids = [c.cid for c in CLAIMS]
        assert ids == ["C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8",
                       "D1", "B1"]
        assert len(set(ids)) == len(ids)

    def test_claims_have_text(self):
        for c in CLAIMS:
            assert len(c.text) > 20

    def test_one_cheap_claim_executes(self):
        # B1 (selection beats sort) is the cheapest; run it end to end.
        b1 = next(c for c in CLAIMS if c.cid == "B1")
        ok, evidence = b1.check(True)
        assert ok
        assert "x" in evidence

    def test_cli_knows_claims(self):
        from repro.bench.cli import ALL_IDS

        assert "claims" in ALL_IDS
