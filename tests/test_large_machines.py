"""Large simulated machines: the paper's upper range (p up to 128) and
awkward processor counts."""

import numpy as np

import repro
from repro.machine import run_spmd


class TestManyRanks:
    def test_collectives_at_p128(self):
        def prog(ctx):
            total = ctx.comm.combine(1)
            off = ctx.comm.exscan_sum(1)
            return total, off

        res = run_spmd(prog, 128)
        assert all(t == 128 for t, _ in res.values)
        assert [o for _, o in res.values] == list(range(128))

    def test_selection_at_p64(self):
        m = repro.Machine(n_procs=64)
        n = 1 << 16
        d = m.generate(n, distribution="random", seed=9)
        rep = repro.median(d, algorithm="randomized")
        assert rep.value == np.sort(d.gather())[(n + 1) // 2 - 1]

    def test_selection_at_awkward_p(self):
        # Non-power-of-two, prime processor count.
        m = repro.Machine(n_procs=37)
        n = 20_000
        d = m.generate(n, distribution="sorted", seed=0)
        rep = repro.median(d, algorithm="fast_randomized",
                           balancer="dimension_exchange")
        assert rep.value == np.sort(d.gather())[(n + 1) // 2 - 1]

    def test_paper_full_width_grid_point(self):
        # The paper's widest machine: p=128, sorted worst case, balanced.
        m = repro.Machine(n_procs=128)
        n = 1 << 17
        d = m.generate(n, distribution="sorted", seed=1)
        rep = repro.median(d, algorithm="randomized",
                           balancer="global_exchange")
        assert rep.value == np.sort(d.gather())[(n + 1) // 2 - 1]
        assert rep.stats.balance_invocations > 0

    def test_simulated_time_scales_down_with_p(self):
        # Strong scaling sanity at fixed n (compute-dominated regime).
        n = 1 << 19
        times = {}
        for p in (4, 32):
            m = repro.Machine(n_procs=p)
            d = m.generate(n, distribution="random", seed=2)
            times[p] = repro.median(d, algorithm="bucket_based").simulated_time
        assert times[32] < times[4]
